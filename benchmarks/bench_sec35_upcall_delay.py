"""§3.5: delays in the delivery upcall.

Paper: upcalls of 1 µs / 100 µs / 1 ms cut throughput by about 9% / 90%
/ 99% — for large delays performance degenerates to one message per
delay period — confirming the protocol delivers in the critical path.
"""

import pytest

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig, TimingModel
from repro.sim.units import ms, us
from repro.workloads import single_subgroup

N = 4
CASES = [("fast (0.4us)", None), ("1us", us(1)), ("100us", us(100)),
         ("1ms", ms(1))]


def bench_sec35_upcall_delay(benchmark):
    def experiment():
        out = {}
        for name, upcall in CASES:
            timing = (TimingModel() if upcall is None
                      else TimingModel(delivery_upcall=upcall))
            count = 150 if upcall is None or upcall <= us(1) else (
                40 if upcall <= us(100) else 8)
            out[name] = single_subgroup(
                N, "all", SpindleConfig.optimized(), timing=timing,
                count=count, max_time=300.0)
        return out

    results = run_once(benchmark, experiment)
    base = results["fast (0.4us)"]
    rows = []
    for name, _ in CASES:
        r = results[name]
        rows.append([
            name, gbps(r.throughput),
            f"-{(1 - r.throughput / base.throughput) * 100:.0f}%",
            f"{r.message_rate:,.0f}",
        ])
    text = figure_banner(
        "§3.5", f"Delivery-upcall delay sensitivity ({N} nodes, 10 KB)",
        "1us/100us/1ms upcalls cost ~9%/90%/99% of throughput",
    ) + "\n" + format_table(
        ["upcall", "GB/s", "throughput loss", "msgs/s"], rows)
    emit("sec35_upcall_delay", text)

    loss100 = 1 - results["100us"].throughput / base.throughput
    loss1ms = 1 - results["1ms"].throughput / base.throughput
    benchmark.extra_info["loss_100us_pct"] = loss100 * 100
    benchmark.extra_info["loss_1ms_pct"] = loss1ms * 100
    assert loss100 > 0.75   # paper: ~90% (our per-message budget is
    assert loss1ms > 0.97   # tighter, so losses skew higher; see notes)
    # The paper's sharpest claim: for large delays, performance
    # degenerates to ~one message delivered per delay period.
    assert results["100us"].message_rate == pytest.approx(10_000, rel=0.15)
    assert results["1ms"].message_rate == pytest.approx(1_000, rel=0.15)

    emit_bench_json("sec35_upcall_delay", {
        "loss_100us_pct": loss100 * 100,
        "loss_1ms_pct": loss1ms * 100,
    })

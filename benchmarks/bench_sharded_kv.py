"""Sharded service plane scaling: aggregate throughput vs shard count.

The sharding argument (docs/SHARDING.md): one Spindle subgroup is one
total order, so its delivery rate bounds a single-shard service no
matter how many clients arrive. Partitioning the keyspace over
independent subgroups (the multi-active-subgroup layout of Fig. 13)
multiplies the aggregate budget — the datacenter-partitioning claim of
Gleam / *Scaling atomic ordering in shared memory* (PAPERS.md).

We drive the router with **open-loop Poisson clients** (arrivals never
wait for completions — the only workload shape that exposes the real
service capacity instead of the clients' round-trip time) at a rate
well past one subgroup's capacity, and sweep 1 -> 2 -> 4 shards over
1 -> 2 -> 4 subgroups on a fixed 8-node cluster. Gated claims:

* aggregate completed-request throughput scales **>= 2x** from one
  shard to four;
* the cross-shard checksum verifier finds **zero violations** at
  quiescence in every configuration.
"""

from random import Random

from _common import emit, emit_bench_json, pick, run_once

from repro.analysis import figure_banner, format_table, usec
from repro.core.config import SpindleConfig
from repro.shard import RouterConfig
from repro.workloads import Cluster, SloStats, open_loop_client

NODES = 8
REPLICATION = 2
SHARD_COUNTS = (1, 2, 4)


def run_config(num_shards, *, clients, ops_per_client, rate, seed=3):
    """One configuration: returns the metrics dict for the table."""
    cluster = Cluster(NODES, config=SpindleConfig.optimized(), seed=seed)
    cluster.add_shards(num_shards=num_shards, replication=REPLICATION,
                       num_subgroups=num_shards, window=16,
                       message_size=512)
    cluster.build()
    router = cluster.router(RouterConfig(queue_depth=128,
                                         workers_per_shard=2))

    stats = SloStats()
    for c in range(clients):
        rng = Random(seed * 7919 + c)
        cluster.spawn_sender(
            open_loop_client(
                cluster.sim,
                lambda k, c=c: router.request(
                    "put", b"c%d.k%d" % (c, k), b"v" * 64),
                rate=rate, count=ops_per_client, rng=rng, stats=stats,
                name=f"client{c}"),
            name=f"client{c}")

    cluster.run_to_quiescence(max_time=30.0)
    # The clock coasts to the quiescence deadline once the queue
    # drains; the service window ends at the last delivery.
    plan_sgs = cluster._shard_plan["subgroup_ids"]
    duration = max(cluster.group(nid).stats(sg).last_delivery_time
                   for sg in plan_sgs for nid in cluster.members_of(sg))
    delivered = sum(cluster.total_delivered(sg) for sg in plan_sgs)
    audit = router.verifier.check()
    return {
        "shards": num_shards,
        "ok": stats.ok,
        "submitted": stats.submitted,
        "rejected": stats.rejected,
        "throughput": stats.ok / duration,
        "delivered_rate": delivered / duration,
        "p50": stats.p50(),
        "p99": stats.p99(),
        "violations": len(audit.violations),
        "duration": duration,
    }


def bench_sharded_kv(benchmark):
    clients = pick(8, 4)
    ops = pick(300, 80)
    rate = pick(400_000.0, 200_000.0)  # per client: far past one order

    def experiment():
        return [run_config(n, clients=clients, ops_per_client=ops,
                           rate=rate) for n in SHARD_COUNTS]

    results = run_once(benchmark, experiment)
    rows = [[r["shards"], f'{r["ok"]}/{r["submitted"]}', r["rejected"],
             f'{r["throughput"]:,.0f}', f'{r["delivered_rate"]:,.0f}',
             usec(r["p50"]), usec(r["p99"]), r["violations"]]
            for r in results]
    text = figure_banner(
        "sharding", f"Sharded KV service, {NODES} nodes, "
        f"{clients} open-loop Poisson clients @ {rate:,.0f}/s each",
        "aggregate throughput scales with independent shard total orders",
    ) + "\n" + format_table(
        ["shards", "ok/submitted", "rejected", "req/s", "delivered/s",
         "p50 (us)", "p99 (us)", "audit violations"], rows)
    emit("sharded_kv", text)

    by_shards = {r["shards"]: r for r in results}
    scale = by_shards[4]["throughput"] / by_shards[1]["throughput"]
    benchmark.extra_info["scale_1_to_4"] = scale
    # The gated claims: >= 2x aggregate scaling, zero audit violations.
    assert scale >= 2.0, f"1->4 shard scaling {scale:.2f}x < 2x"
    assert all(r["violations"] == 0 for r in results)
    # Every accepted request completed: the plane loses nothing.
    assert all(r["ok"] + r["rejected"] == r["submitted"] for r in results)

    emit_bench_json("sharded_kv", {
        "scale_1_to_4": scale,
        "throughput_4shards_req_s": by_shards[4]["throughput"],
        "verifier_ok": 1.0,
    }, extra={
        "clients": clients,
        "ops_per_client": ops,
        "rate_per_client": rate,
        "per_config": [{k: v for k, v in r.items()} for r in results],
    })

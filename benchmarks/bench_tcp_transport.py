"""§1 claim: the Spindle optimizations also apply on other transports.

"Here, we focus on RDMA but the same observation and optimizations
would also apply to other high-speed networking technologies (Derecho
supports many kinds of networks, including TCP)."

We rerun the all-senders experiment on a kernel-TCP fabric model
(~30 µs latency, 10 Gbps, 3 µs per-send CPU) and check that (a) the
optimizations still deliver a large speedup, and (b) RDMA beats TCP.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.rdma.latency import LatencyModel
from repro.workloads import single_subgroup

NODES = [4, 8]


def bench_tcp_transport(benchmark):
    def experiment():
        out = {}
        for n in NODES:
            out[(n, "tcp", "base")] = single_subgroup(
                n, "all", SpindleConfig.baseline(),
                latency_model=LatencyModel.tcp(), count=40, max_time=300.0)
            out[(n, "tcp", "opt")] = single_subgroup(
                n, "all", SpindleConfig.optimized(),
                latency_model=LatencyModel.tcp(), count=120, max_time=300.0)
            out[(n, "rdma", "opt")] = single_subgroup(
                n, "all", SpindleConfig.optimized(), count=120)
        return out

    results = run_once(benchmark, experiment)
    rows = []
    for n in NODES:
        base = results[(n, "tcp", "base")].throughput
        opt = results[(n, "tcp", "opt")].throughput
        rdma = results[(n, "rdma", "opt")].throughput
        rows.append([n, gbps(base), gbps(opt), f"{opt / base:.1f}x",
                     gbps(rdma), f"{rdma / opt:.1f}x"])
    text = figure_banner(
        "§1 transport claim", "Spindle on a kernel-TCP fabric (10 KB, all "
        "senders)",
        "optimizations help on TCP too; RDMA remains far faster",
    ) + "\n" + format_table(
        ["n", "tcp base", "tcp optimized", "tcp speedup",
         "rdma optimized", "rdma/tcp"], rows)
    emit("tcp_transport", text)

    for n in NODES:
        assert (results[(n, "tcp", "opt")].throughput
                > 2 * results[(n, "tcp", "base")].throughput)
        assert (results[(n, "rdma", "opt")].throughput
                > 2 * results[(n, "tcp", "opt")].throughput)
    benchmark.extra_info["tcp_speedup_8"] = (
        results[(8, "tcp", "opt")].throughput
        / results[(8, "tcp", "base")].throughput)

    emit_bench_json("tcp_transport", {
        "tcp_speedup_8": results[(8, "tcp", "opt")].throughput
        / results[(8, "tcp", "base")].throughput,
    })

"""Figure 5: batching applied to successively more pipeline stages.

Paper: adding delivery, then receive, then send batching improves BOTH
throughput and latency at every subgroup size (unlike traditional fixed
batching, which trades latency for throughput).
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps, usec
from repro.core.config import SpindleConfig
from repro.workloads import single_subgroup

NODES = [2, 4, 8, 16]

STAGES = [
    ("baseline", SpindleConfig.baseline()),
    ("+delivery", SpindleConfig.baseline().with_(batch_delivery=True)),
    ("+receive", SpindleConfig.baseline().with_(batch_delivery=True,
                                                batch_receive=True)),
    ("+send", SpindleConfig.batching_only()),
]


def bench_fig05_incremental_batching(benchmark):
    def experiment():
        return {
            (n, name): single_subgroup(
                n, "all", config,
                count=60 if name == "baseline" else 150)
            for n in NODES for name, config in STAGES
        }

    results = run_once(benchmark, experiment)
    rows = []
    for n in NODES:
        row = [n]
        for name, _ in STAGES:
            r = results[(n, name)]
            row.append(f"{gbps(r.throughput)}/{usec(r.latency)}")
        rows.append(row)
    text = figure_banner(
        "Figure 5", "Incremental batching: throughput (GB/s) / latency (us)",
        "each added stage improves BOTH throughput and latency",
    ) + "\n" + format_table(["n"] + [name for name, _ in STAGES], rows)
    emit("fig05_incremental_batching", text)

    for n in NODES:
        # Monotone throughput through the stages...
        thr = [results[(n, name)].throughput for name, _ in STAGES]
        assert thr[-1] > thr[0]
        assert thr[1] >= thr[0] * 0.9  # each stage helps (small noise ok)
        # ...and full batching beats baseline on latency as well.
        assert (results[(n, "+send")].latency
                < results[(n, "baseline")].latency)
    benchmark.extra_info["thr_16_full"] = results[(16, "+send")].throughput / 1e9

    emit_bench_json("fig05_incremental_batching", {
        "thr_16_full_gbps": results[(16, "+send")].throughput / 1e9,
    })

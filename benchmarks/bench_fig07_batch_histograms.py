"""Figure 7: batch-size histograms for the three pipeline stages
(single subgroup, 16 senders, w=100).

Paper: sends typically batch < 5 messages; receive merges all senders'
streams into larger batches; delivery adds a stability level and forms
the largest batches (multiples of ~16). Mean batch sizes for 1 subgroup:
{1.72, 22.18, 35.19} (send, receive, delivery).
"""

from collections import Counter

from _common import emit, emit_bench_json, pick, run_once

from repro.analysis import figure_banner, format_table
from repro.core.config import SpindleConfig
from repro.workloads import Cluster, continuous_sender

BUCKETS = [(1, 1), (2, 4), (5, 9), (10, 19), (20, 49), (50, 99),
           (100, 199), (200, 10**9)]


def bucketize(histogram: Counter):
    out = []
    for lo, hi in BUCKETS:
        total = sum(c for size, c in histogram.items() if lo <= size <= hi)
        out.append(total)
    return out


def bench_fig07_batch_histograms(benchmark):
    def experiment():
        cluster = Cluster(16, config=SpindleConfig.optimized())
        cluster.add_subgroup(window=100, message_size=10240)
        cluster.build()
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=pick(250, 120), size=10240))
        cluster.run_to_quiescence(max_time=60.0)
        cluster.assert_all_delivered(0, per_sender=pick(250, 120))
        stats = cluster.group(0).stats(0)
        return stats

    stats = run_once(benchmark, experiment)
    send_mean, receive_mean, delivery_mean = stats.mean_batches
    rows = []
    labels = [f"{lo}" if lo == hi else f"{lo}-{hi if hi < 10**9 else '+'}"
              for lo, hi in BUCKETS]
    send_b = bucketize(stats.send_batches)
    recv_b = bucketize(stats.receive_batches)
    deliv_b = bucketize(stats.delivery_batches)
    for label, s, r, d in zip(labels, send_b, recv_b, deliv_b):
        rows.append([label, s, r, d])
    rows.append(["mean", f"{send_mean:.2f}", f"{receive_mean:.2f}",
                 f"{delivery_mean:.2f}"])
    text = figure_banner(
        "Figure 7", "Batch-size histograms (send / receive / delivery)",
        "paper means ~{1.72, 22.18, 35.19}: receive > send, delivery largest",
    ) + "\n" + format_table(["batch size", "send", "receive", "delivery"],
                            rows)
    emit("fig07_batch_histograms", text)

    benchmark.extra_info["mean_send"] = send_mean
    benchmark.extra_info["mean_receive"] = receive_mean
    benchmark.extra_info["mean_delivery"] = delivery_mean
    assert send_mean < receive_mean < delivery_mean
    # Sends form much smaller batches than the merged receive stream
    # (absolute means run ~8x the paper's; see EXPERIMENTS.md).
    assert send_mean < receive_mean / 3

    emit_bench_json("fig07_batch_histograms", {
        "mean_receive": receive_mean,
        "mean_delivery": delivery_mean,
    }, extra={"mean_send": send_mean})

"""Ablation (§3.2): opportunistic batching vs fixed batch sizes.

Paper: "In one experiment, we explored waiting to send a fixed batch of
messages on top of receive and delivery batching. Performance collapsed
and latency soared even for very small batch sizes." Opportunistic
batching never waits; fixed batching must pause to accumulate, which at
RDMA speeds is disastrous whenever the application paces itself.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps, usec
from repro.core.config import SpindleConfig
from repro.sim.units import us
from repro.workloads import Cluster, continuous_sender

N = 4
FIXED_SIZES = [0, 4, 16, 64]  # 0 = opportunistic


def run_case(fixed: int, paced: bool):
    config = SpindleConfig.batching_only().with_(fixed_send_batch=fixed)
    cluster = Cluster(N, config=config)
    cluster.add_subgroup(window=100, message_size=10240)
    cluster.build()
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=120, size=10240,
            delay=us(5) if paced else 0.0))
    cluster.run_to_quiescence(max_time=120.0)
    cluster.assert_all_delivered(0, per_sender=120)
    return cluster.aggregate_throughput(0), cluster.mean_latency(0)


def bench_ablation_fixed_batch(benchmark):
    def experiment():
        return {
            (fixed, paced): run_case(fixed, paced)
            for fixed in FIXED_SIZES for paced in (False, True)
        }

    results = run_once(benchmark, experiment)
    rows = []
    for fixed in FIXED_SIZES:
        label = "opportunistic" if fixed == 0 else f"fixed {fixed}"
        thr_t, lat_t = results[(fixed, False)]
        thr_p, lat_p = results[(fixed, True)]
        rows.append([label, gbps(thr_t), usec(lat_t),
                     gbps(thr_p), usec(lat_p)])
    text = figure_banner(
        "Ablation", "Opportunistic vs fixed send batching "
        "(tight loop | paced 5us)",
        "fixed batches make latency soar whenever senders pace themselves",
    ) + "\n" + format_table(
        ["scheme", "tight GB/s", "tight lat", "paced GB/s", "paced lat"],
        rows)
    emit("ablation_fixed_batch", text)

    # Under pacing, fixed batches lose on latency — mildly at size 4,
    # badly beyond (the paper's "latency soared even for very small
    # batch sizes").
    _, lat_opportunistic = results[(0, True)]
    assert results[(4, True)][1] > 1.15 * lat_opportunistic
    for fixed in (16, 64):
        _, lat_fixed = results[(fixed, True)]
        assert lat_fixed > 2 * lat_opportunistic
    benchmark.extra_info["paced_latency_blowup_64"] = (
        results[(64, True)][1] / lat_opportunistic)

    emit_bench_json("ablation_fixed_batch", {
        "paced_latency_blowup_64": (
            results[(64, True)][1] / lat_opportunistic, False),
    })

"""Figure 15: throughput with memcpy on the send and delivery paths.

Paper: with the application copying data into slots before sending and
out of ring buffers at delivery, all-sender bandwidth declines but stays
consistently around 7.5 GB/s; half senders decline slightly; one sender
is unaffected (the copies hide inside coordination overheads); 1 B
messages show no loss at all.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.workloads import single_subgroup

NODES = [2, 4, 8, 16]
PATTERNS = ["all", "half", "one"]
COPY = SpindleConfig.optimized().with_(copy_on_send=True,
                                       copy_on_delivery=True)


def bench_fig15_memcpy_pipeline(benchmark):
    def experiment():
        out = {}
        for n in NODES:
            for pattern in PATTERNS:
                out[(n, pattern, "inplace")] = single_subgroup(
                    n, pattern, SpindleConfig.optimized(), count=150)
                out[(n, pattern, "memcpy")] = single_subgroup(
                    n, pattern, COPY, count=150)
        out["tiny_inplace"] = single_subgroup(
            8, "all", SpindleConfig.optimized(), message_size=1, count=150)
        out["tiny_memcpy"] = single_subgroup(8, "all", COPY, message_size=1,
                                             count=150)
        return out

    results = run_once(benchmark, experiment)
    rows = []
    for n in NODES:
        row = [n]
        for pattern in PATTERNS:
            inplace = results[(n, pattern, "inplace")].throughput
            copied = results[(n, pattern, "memcpy")].throughput
            row.append(f"{gbps(inplace)} -> {gbps(copied)}")
        rows.append(row)
    tiny_ratio = (results["tiny_memcpy"].throughput
                  / results["tiny_inplace"].throughput)
    rows.append(["1B@8", f"ratio {tiny_ratio:.2f}", "-", "-"])
    text = figure_banner(
        "Figure 15", "memcpy on send+delivery paths (in-place -> memcpy GB/s)",
        "all-senders decline but stay high; one sender unaffected; 1 B free",
    ) + "\n" + format_table(["n"] + PATTERNS, rows)
    emit("fig15_memcpy_pipeline", text)

    for n in NODES:
        all_ratio = (results[(n, "all", "memcpy")].throughput
                     / results[(n, "all", "inplace")].throughput)
        assert 0.45 < all_ratio < 1.02
        if n >= 8:
            # At larger subgroup sizes the copies hide inside the
            # coordination overheads (the paper's one-sender claim; at
            # n=2 coordination is too cheap to absorb them).
            one_ratio = (results[(n, "one", "memcpy")].throughput
                         / results[(n, "one", "inplace")].throughput)
            assert one_ratio > 0.85
    assert tiny_ratio > 0.9      # §4.4: no loss for 1 B messages
    benchmark.extra_info["all16_ratio"] = (
        results[(16, "all", "memcpy")].throughput
        / results[(16, "all", "inplace")].throughput)

    emit_bench_json("fig15_memcpy_pipeline", {
        "all16_ratio": results[(16, "all", "memcpy")].throughput
        / results[(16, "all", "inplace")].throughput,
    })

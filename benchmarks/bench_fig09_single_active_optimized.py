"""Figure 9 (+ §4.1.3 batch-size table): opportunistic batching with one
active subgroup among many.

Paper: with batching, extra inactive subgroups degrade performance far
more gracefully than the baseline (and can even *increase* throughput at
moderate counts, an artifact of larger batches). Mean batch sizes grow
from {1.72, 22.18, 35.19} at 1 subgroup to {50.45, 207.46, 638.57} at
50 — batching adapts to the induced delays.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.workloads import multi_subgroup

SUBGROUPS = [1, 2, 5, 10, 20, 50]
N = 8


def bench_fig09_single_active_optimized(benchmark):
    def experiment():
        return {
            k: multi_subgroup(N, num_subgroups=k, active_subgroups=1,
                              config=SpindleConfig.batching_only(), count=150)
            for k in SUBGROUPS
        }

    results = run_once(benchmark, experiment)
    base = results[1].throughput
    rows = []
    for k in SUBGROUPS:
        r = results[k]
        s, rcv, d = r.mean_batches
        rows.append([
            k, gbps(r.throughput), f"{r.throughput / base:.2f}",
            f"{r.extras['active_fraction_node0'] * 100:.0f}%",
            f"{s:.1f}", f"{rcv:.1f}", f"{d:.1f}",
        ])
    text = figure_banner(
        "Figure 9 / §4.1.3", "Opportunistic batching: 1 active subgroup "
        f"among k ({N} nodes)",
        "graceful degradation; batch sizes grow with inactive subgroups",
    ) + "\n" + format_table(
        ["subgroups", "GB/s", "vs 1", "active-pred time",
         "send batch", "recv batch", "deliv batch"], rows)
    emit("fig09_single_active_optimized", text)

    benchmark.extra_info["ratio_50"] = results[50].throughput / base
    # Shape: far more graceful than the baseline's collapse...
    assert results[50].throughput > 0.3 * base
    assert results[10].throughput > 0.7 * base
    # ...because batches grow to absorb the predicate-fairness delay.
    assert results[50].mean_batches[0] > results[1].mean_batches[0]
    assert results[50].mean_batches[2] > results[1].mean_batches[2]

    emit_bench_json("fig09_single_active_optimized", {
        "ratio_50": results[50].throughput / base,
    })

#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_<name>.json artifacts.

Compares the schema-versioned artifacts a benchmark run leaves at the
repository root (``benchmarks/_common.emit_bench_json``) against the
committed baselines in ``benchmarks/baselines/``, and fails when any
scalar regresses by more than the threshold (default 25%) in its bad
direction (``higher_is_better`` decides which way is bad).

Usage::

    python benchmarks/check_regressions.py            # gate repo-root artifacts
    python benchmarks/check_regressions.py --dir out/ # gate another directory
    python benchmarks/check_regressions.py --update   # rewrite the baselines

Known/accepted regressions can be waived with one line each in
``benchmarks/baselines/OVERRIDES``::

    # <artifact>.<scalar> — reason (kept for the reviewer)
    fig12_thread_sync.mean_speedup  quick-mode variance after seed bump

Only the first whitespace-separated token of a line is the key; the
rest is a free-form justification. ``<artifact>`` alone waives every
scalar of that artifact. Stdlib-only by design: the gate must run on a
bare CI python.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import shutil
import sys
from typing import Dict, List, Optional, Set, Tuple

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(HERE)
BASELINE_DIR = os.path.join(HERE, "baselines")
OVERRIDES_FILE = os.path.join(BASELINE_DIR, "OVERRIDES")
SCHEMA_VERSION = 1
DEFAULT_THRESHOLD = 0.25


def load_artifact(path: str) -> Optional[dict]:
    """Load and schema-check one BENCH_*.json; None (with a message)
    when it is unreadable or has the wrong schema version."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"check_regressions: unreadable artifact {path}: {exc}",
              file=sys.stderr)
        return None
    if data.get("schema_version") != SCHEMA_VERSION:
        print(f"check_regressions: {path}: schema_version "
              f"{data.get('schema_version')!r} != {SCHEMA_VERSION}",
              file=sys.stderr)
        return None
    if not isinstance(data.get("name"), str) or \
            not isinstance(data.get("scalars"), dict):
        print(f"check_regressions: {path}: missing name/scalars",
              file=sys.stderr)
        return None
    return data


def load_overrides(path: Optional[str] = None) -> Set[str]:
    """Waived keys: ``artifact`` or ``artifact.scalar`` tokens."""
    if path is None:
        path = OVERRIDES_FILE  # resolved at call time (testable)
    waived: Set[str] = set()
    if not os.path.exists(path):
        return waived
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            waived.add(line.split()[0])
    return waived


def compare(
    current: dict,
    baseline: dict,
    threshold: float,
    waived: Set[str],
) -> Tuple[List[List[str]], List[str]]:
    """Compare one artifact against its baseline.

    Returns (rows for the report, list of failing keys).
    """
    name = current["name"]
    rows: List[List[str]] = []
    failures: List[str] = []
    base_scalars: Dict[str, dict] = baseline.get("scalars", {})
    for scalar, spec in sorted(current["scalars"].items()):
        key = f"{name}.{scalar}"
        value = float(spec["value"])
        higher = bool(spec.get("higher_is_better", True))
        base = base_scalars.get(scalar)
        if base is None:
            rows.append([key, "-", f"{value:g}", "-", "new (no baseline)"])
            continue
        base_value = float(base["value"])
        if base_value == 0.0:
            delta = 0.0 if value == 0.0 else float("inf")
        else:
            delta = (value - base_value) / abs(base_value)
        bad = (delta < -threshold) if higher else (delta > threshold)
        status = "ok"
        if bad and (name in waived or key in waived):
            status = "waived"
        elif bad:
            status = f"REGRESSION (> {threshold * 100:.0f}%)"
            failures.append(key)
        rows.append([key, f"{base_value:g}", f"{value:g}",
                     f"{delta * +100:+.1f}%", status])
    return rows, failures


def find_artifacts(directory: str) -> List[str]:
    return sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))


def update_baselines(paths: List[str]) -> int:
    os.makedirs(BASELINE_DIR, exist_ok=True)
    for path in paths:
        if load_artifact(path) is None:
            return 2
        shutil.copyfile(path,
                        os.path.join(BASELINE_DIR, os.path.basename(path)))
        print(f"check_regressions: baseline <- {os.path.basename(path)}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dir", default=REPO_ROOT,
                        help="directory holding BENCH_*.json artifacts "
                             "(default: repo root)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative regression tolerance (default 0.25)")
    parser.add_argument("--min-artifacts", type=int, default=1,
                        help="fail unless at least this many schema-valid "
                             "artifacts are found")
    parser.add_argument("--update", action="store_true",
                        help="rewrite benchmarks/baselines/ from the "
                             "current artifacts instead of gating")
    args = parser.parse_args(argv)

    paths = find_artifacts(args.dir)
    if args.update:
        if not paths:
            print("check_regressions: no BENCH_*.json artifacts to adopt",
                  file=sys.stderr)
            return 2
        return update_baselines(paths)

    artifacts = []
    for path in paths:
        data = load_artifact(path)
        if data is None:
            return 2
        artifacts.append(data)
    if len(artifacts) < args.min_artifacts:
        print(f"check_regressions: only {len(artifacts)} schema-valid "
              f"artifact(s) in {args.dir}, need >= {args.min_artifacts}",
              file=sys.stderr)
        return 2

    waived = load_overrides()
    all_rows: List[List[str]] = []
    all_failures: List[str] = []
    for data in artifacts:
        base_path = os.path.join(BASELINE_DIR,
                                 f"BENCH_{data['name']}.json")
        if not os.path.exists(base_path):
            all_rows.append([data["name"], "-", "-", "-",
                             "new artifact (no baseline file)"])
            continue
        baseline = load_artifact(base_path)
        if baseline is None:
            return 2
        rows, failures = compare(data, baseline, args.threshold, waived)
        all_rows.extend(rows)
        all_failures.extend(failures)

    widths = [max(len(r[i]) for r in all_rows + [["scalar", "baseline",
                                                 "current", "delta",
                                                 "status"]])
              for i in range(5)]
    header = ["scalar", "baseline", "current", "delta", "status"]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    print("  ".join("-" * w for w in widths))
    for row in all_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))

    if all_failures:
        print(f"\ncheck_regressions: {len(all_failures)} scalar(s) "
              f"regressed: {', '.join(all_failures)}", file=sys.stderr)
        print("(waive intentionally with a line in "
              "benchmarks/baselines/OVERRIDES, or refresh baselines with "
              "--update)", file=sys.stderr)
        return 1
    print(f"\ncheck_regressions: {len(artifacts)} artifact(s) ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 1: RDMA write latency vs data size.

Paper: latency is nearly constant up to 4 KB — 1.73 µs for 1 B rising
only to 2.46 µs at 4 KB on the 12.5 GB/s fabric.

We measure end-to-end one-sided write latency through the simulated
fabric (post + egress + wire) for the paper's size range.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, usec
from repro.rdma import ByteRegion, RdmaFabric
from repro.sim import Simulator

SIZES = [1, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576]


def measure_write_latency(size: int) -> float:
    """One write, idle fabric: time from post to remote visibility."""
    sim = Simulator()
    fabric = RdmaFabric(sim)
    a, b = fabric.add_node(), fabric.add_node()
    src = ByteRegion(size)
    dst = ByteRegion(size)
    a.register(src)
    key = b.register(dst)
    qp = fabric.queue_pair(a.node_id, b.node_id)
    arrival = {}
    b.on_remote_write.append(lambda region, snap: arrival.setdefault("t", sim.now))
    qp.post_write(src, 0, key, 0, size)
    sim.run()
    return arrival["t"]


def bench_fig01_rdma_latency(benchmark):
    def experiment():
        return {size: measure_write_latency(size) for size in SIZES}

    latencies = run_once(benchmark, experiment)
    rows = [(size, usec(latencies[size]),
             f"{size / latencies[size] / 1e9:.2f}")
            for size in SIZES]
    text = figure_banner(
        "Figure 1", "RDMA write latency vs data size",
        "1.73 us at 1 B -> 2.46 us at 4 KB; nearly flat below 4 KB",
    ) + "\n" + format_table(["size (B)", "latency (us)", "eff. GB/s"], rows)
    emit("fig01_rdma_latency", text)

    benchmark.extra_info["latency_1B_us"] = latencies[1] * 1e6
    benchmark.extra_info["latency_4KB_us"] = latencies[4096] * 1e6
    assert 1.6 < latencies[1] * 1e6 < 1.9
    assert 2.2 < latencies[4096] * 1e6 < 2.7
    assert latencies[4096] / latencies[1] < 1.5  # "nearly constant"

    emit_bench_json("fig01_rdma_latency", {
        "latency_1B_us": (latencies[1] * 1e6, False),
        "latency_4KB_us": (latencies[4096] * 1e6, False),
    })

"""Figure 14: memcpy latency and bandwidth vs data size.

Paper: memcpy latency remains low up to a few KB, then deteriorates
quickly for large sizes (the cache boundary) — the basis for the
pragmatic copy-in/copy-out mode of §4.4.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, usec
from repro.core.config import TimingModel

SIZES = [64, 256, 1024, 4096, 10240, 65536, 262144, 1048576, 4194304,
         16777216]


def bench_fig14_memcpy(benchmark):
    def experiment():
        t = TimingModel()
        return {s: (t.memcpy_time(s), t.memcpy_bandwidth(s)) for s in SIZES}

    curve = run_once(benchmark, experiment)
    rows = [
        [size, usec(curve[size][0]), f"{curve[size][1] / 1e9:.1f}"]
        for size in SIZES
    ]
    text = figure_banner(
        "Figure 14", "memcpy latency / bandwidth vs size",
        "latency low up to a few KB, deteriorating for large sizes",
    ) + "\n" + format_table(["size (B)", "latency (us)", "GB/s"], rows)
    emit("fig14_memcpy", text)

    t10k = curve[10240][0]
    benchmark.extra_info["memcpy_10KB_us"] = t10k * 1e6
    assert t10k < 1e-6                       # 10 KB copies stay sub-µs
    assert curve[16777216][1] < 0.5 * curve[65536][1]  # bandwidth cliff
    times = [curve[s][0] for s in SIZES]
    assert times == sorted(times)

    emit_bench_json("fig14_memcpy", {
        "memcpy_10KB_us": (t10k * 1e6, False),
    })

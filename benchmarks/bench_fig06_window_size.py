"""Figure 6: effect of the ring-buffer window size (all senders, 10 KB).

Paper: even w=5 beats the baseline-with-w=100 by ~4.5x; the best
performance is at w=100; very large windows (500, 1000) start declining
beyond ~10 nodes.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.workloads import single_subgroup

WINDOWS = [5, 10, 50, 100, 500, 1000]
NODES = [4, 8, 16]


def bench_fig06_window_size(benchmark):
    def experiment():
        results = {}
        for n in NODES:
            for w in WINDOWS:
                results[(n, w)] = single_subgroup(
                    n, "all", SpindleConfig.batching_only(),
                    window=w, count=max(150, 2 * w))
            results[(n, "baseline")] = single_subgroup(
                n, "all", SpindleConfig.baseline(), window=100, count=60)
        return results

    results = run_once(benchmark, experiment)
    rows = []
    for n in NODES:
        row = [n, gbps(results[(n, "baseline")].throughput)]
        row += [gbps(results[(n, w)].throughput) for w in WINDOWS]
        rows.append(row)
    text = figure_banner(
        "Figure 6", "Throughput (GB/s) vs window size, all senders",
        "w=5 already ~4.5x baseline(w=100); best near w=100",
    ) + "\n" + format_table(
        ["n", "baseline"] + [f"w={w}" for w in WINDOWS], rows)
    emit("fig06_window_size", text)

    for n in NODES:
        base = results[(n, "baseline")].throughput
        # Paper: ~4.5x average. Our baseline is stronger at small n
        # (see EXPERIMENTS.md), so the factor grows with n.
        assert results[(n, 5)].throughput > (2 * base if n >= 8 else base)
        # w=100 at least matches small windows.
        assert (results[(n, 100)].throughput
                >= 0.9 * max(results[(n, w)].throughput for w in WINDOWS))
    benchmark.extra_info["best_window"] = max(
        WINDOWS, key=lambda w: results[(16, w)].throughput)

    emit_bench_json("fig06_window_size", {
        "best_window_thr_gbps":
            max(results[(16, w)].throughput for w in WINDOWS) / 1e9,
    })

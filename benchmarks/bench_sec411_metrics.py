"""§4.1.1 internal metrics: why opportunistic batching wins (16 senders).

Paper (baseline -> optimized): RDMA write requests 18.2 M -> 1.1 M;
polling-thread time posting writes 64.84 s -> 4.29 s; sender-thread
time blocked waiting for a free buffer 97.6% -> 52.7% of (much shorter)
runtime. Our message counts are smaller, so we compare *ratios*.
"""

from _common import emit, emit_bench_json, pick, run_once

from repro.analysis import figure_banner, format_table
from repro.core.config import SpindleConfig
from repro.workloads import single_subgroup

N = 16
COUNT = pick(250, 220)  # > window (100): senders must recycle and wait


def bench_sec411_metrics(benchmark):
    def experiment():
        return {
            "baseline": single_subgroup(
                N, "all", SpindleConfig.baseline(), count=COUNT),
            "optimized": single_subgroup(
                N, "all", SpindleConfig.batching_only(), count=COUNT),
        }

    results = run_once(benchmark, experiment)
    base, opt = results["baseline"], results["optimized"]
    messages = N * COUNT
    rows = [
        ["RDMA writes", f"{base.rdma_writes:,}", f"{opt.rdma_writes:,}",
         f"{base.rdma_writes / opt.rdma_writes:.1f}x fewer"],
        ["writes/message", f"{base.rdma_writes / messages:.1f}",
         f"{opt.rdma_writes / messages:.1f}", "-"],
        ["post time (node 0)", f"{base.post_time * 1e3:.2f}ms",
         f"{opt.post_time * 1e3:.2f}ms",
         f"{base.post_time / opt.post_time:.1f}x less"],
        ["post/busy fraction", f"{base.post_fraction * 100:.0f}%",
         f"{opt.post_fraction * 100:.0f}%", "-"],
        ["sender wait fraction", f"{base.sender_wait_fraction * 100:.0f}%",
         f"{opt.sender_wait_fraction * 100:.0f}%", "-"],
        ["runtime (sim)", f"{base.duration * 1e3:.1f}ms",
         f"{opt.duration * 1e3:.1f}ms",
         f"{base.duration / opt.duration:.1f}x shorter"],
    ]
    text = figure_banner(
        "§4.1.1", f"Internal metrics, {N} senders, 10 KB",
        "writes 18.2M->1.1M (16x); post time 64.8s->4.3s (15x); "
        "sender wait 97.6%->52.7%",
    ) + "\n" + format_table(["metric", "baseline", "optimized", "change"],
                            rows)
    emit("sec411_metrics", text)

    benchmark.extra_info["write_reduction"] = (
        base.rdma_writes / opt.rdma_writes)
    benchmark.extra_info["post_time_reduction"] = (
        base.post_time / opt.post_time)
    assert base.rdma_writes / opt.rdma_writes > 5
    assert base.post_time / opt.post_time > 5
    assert base.post_fraction > 0.30            # ">30% of its time posting"
    assert opt.sender_wait_fraction < base.sender_wait_fraction
    # ~97.6% in the paper with 1M messages; our 250-message runs spend
    # a window-fill's worth (the first 100 sends) not waiting at all,
    # so the fraction is proportionally lower but still dominant.
    assert base.sender_wait_fraction > 0.5

    emit_bench_json("sec411_metrics", {
        "write_reduction": base.rdma_writes / opt.rdma_writes,
        "post_time_reduction": base.post_time / opt.post_time,
    }, extra={"nodes": N, "count": COUNT})

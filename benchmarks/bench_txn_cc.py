"""OCC vs 2PL: the contention crossover (docs/TRANSACTIONS.md).

The transaction plane's two concurrency-control protocols trade wasted
work for blocking. Under **low contention, read-heavy** programs OCC
wins: reads cost nothing at execute time and certify in one batched
validate slice per read subgroup, while strict 2PL pays a per-key
(remote) ALock acquire for every read it will never conflict on. Under
**high contention** — hot-key read-modify-writes — the bet inverts:
OCC keeps re-executing whole transactions whose read sets went stale
(each failed attempt burns WAL fsyncs, prepare rounds and an abort
settle), while wound-wait 2PL resolves the same conflicts with cheap
plane-side lock waits and retries that die before sequencing anything.

This benchmark pins both ends of the crossover and gates only the
*direction* (speedup ratios > 1), not magnitudes: the absolute numbers
move with simulator timing models, the direction is the protocol
property.
"""

import bisect
from random import Random

from _common import emit, emit_bench_json, pick, run_once

from repro.analysis import figure_banner, format_table
from repro.sim.units import us
from repro.txn import TxnConfig, TxnOp
from repro.workloads import Cluster

NODES, SHARDS, SUBGROUPS, REPLICATION = 5, 4, 2, 2
SEEDS = pick([0, 1, 2, 3], [0])

# Workload shapes are fixed in both modes (they define the crossover);
# quick mode only trims the seed sweep.
CASES = {
    # Uniform reads over a large keyspace: conflicts are vanishingly
    # rare, so 2PL's per-key lock acquires are pure overhead.
    "low": dict(keys=4096, zipf_s=0.0, read_ratio=0.95, txn_size=16,
                clients=6, txns=12, rmw=False,
                backoff_us=120.0, max_attempts=12),
    # Zipf(1.2) read-modify-writes over 8 keys from 10 clients: almost
    # every attempt conflicts, and the retry backoff is kept small so
    # the gate measures conflict *resolution*, not sleeping.
    "high": dict(keys=8, zipf_s=1.2, read_ratio=0.2, txn_size=5,
                 clients=10, txns=12, rmw=True,
                 backoff_us=15.0, max_attempts=30),
}


def zipf_cdf(n: int, s: float):
    """Cumulative harmonic weights for Zipf(s) over ``n`` keys."""
    cum, total = [], 0.0
    for i in range(n):
        total += 1.0 / (i + 1) ** s
        cum.append(total)
    return cum, total


def run_case(cc: str, seed: int, *, keys, zipf_s, read_ratio, txn_size,
             clients, txns, rmw, backoff_us, max_attempts):
    cluster = Cluster(num_nodes=NODES, seed=seed)
    cluster.add_shards(num_shards=SHARDS, replication=REPLICATION,
                       num_subgroups=SUBGROUPS, window=16)
    cluster.build()
    plane = cluster.txn(TxnConfig(cc=cc, retry_backoff=us(backoff_us),
                                  max_attempts=max_attempts))
    # Dedicated coordinator host outside every subgroup: all ALock
    # acquires pay the remote (one-sided RDMA) delay.
    coordinator = NODES - 1
    cum, total = zipf_cdf(keys, zipf_s)
    done = []

    def client(c):
        rng = Random(seed * 7919 + c)

        def pick_key():
            return b"k%d" % bisect.bisect_left(cum, rng.random() * total)

        for i in range(txns):
            ops = []
            for _ in range(txn_size):
                key = pick_key()
                if rng.random() < read_ratio:
                    ops.append(TxnOp("get", key))
                elif rmw:
                    ops.append(TxnOp("get", key))
                    ops.append(TxnOp("put", key, b"v%d.%d" % (c, i)))
                else:
                    ops.append(TxnOp("put", key, b"v%d.%d" % (c, i)))
            out = yield from plane.run_txn(ops, coordinator_node=coordinator)
            done.append((cluster.sim.now, out))
            yield us(2.0)

    for c in range(clients):
        cluster.spawn_sender(client(c), name=f"txn-client-{c}")
    cluster.run_to_quiescence(max_time=5.0)

    assert len(done) == clients * txns, "a client stalled before finishing"
    span = max(at for at, _ in done)
    committed = sum(1 for _, out in done if out.status == "committed")
    attempts = sum(out.attempts for _, out in done)
    assert cluster.router().verifier.check(), "replica checksums diverged"
    return {"committed": committed, "total": len(done), "span": span,
            "attempts": attempts, "tps": committed / span}


def sweep(cc: str, case: str):
    """Aggregate throughput over the seed sweep: sum(committed) /
    sum(span) — one slow seed can't hide behind a mean of ratios."""
    runs = [run_case(cc, seed, **CASES[case]) for seed in SEEDS]
    committed = sum(r["committed"] for r in runs)
    span = sum(r["span"] for r in runs)
    return {"tps": committed / span, "committed": committed,
            "total": sum(r["total"] for r in runs),
            "attempts": sum(r["attempts"] for r in runs), "runs": runs}


def bench_txn_cc(benchmark):
    def experiment():
        return {(cc, case): sweep(cc, case)
                for cc in ("occ", "2pl") for case in ("low", "high")}

    results = run_once(benchmark, experiment)

    occ_low, twopl_low = results[("occ", "low")], results[("2pl", "low")]
    occ_high, twopl_high = results[("occ", "high")], results[("2pl", "high")]
    low_speedup = occ_low["tps"] / twopl_low["tps"]
    high_speedup = twopl_high["tps"] / occ_high["tps"]

    rows = []
    for case, a, b in (("low", occ_low, twopl_low),
                       ("high", occ_high, twopl_high)):
        rows.append([
            case,
            f"{a['tps']:,.0f}", f"{a['committed']}/{a['total']}",
            str(a["attempts"]),
            f"{b['tps']:,.0f}", f"{b['committed']}/{b['total']}",
            str(b["attempts"]),
            f"{a['tps'] / b['tps']:.2f}",
        ])
    text = figure_banner(
        "Transactions", "OCC vs 2PL across the contention crossover "
        f"(seeds {list(SEEDS)})",
        "OCC wins low-contention read-heavy; wound-wait 2PL wins "
        "hot-key read-modify-writes",
    ) + "\n" + format_table(
        ["case", "occ txn/s", "occ comm", "occ att",
         "2pl txn/s", "2pl comm", "2pl att", "occ/2pl"],
        rows)
    emit("txn_cc", text)

    # Low contention is conflict-free by construction: everything
    # commits. High contention may exhaust attempt budgets, but the
    # protocols must still commit the overwhelming majority.
    assert occ_low["committed"] == occ_low["total"]
    assert twopl_low["committed"] == twopl_low["total"]
    for r in (occ_high, twopl_high):
        assert r["committed"] >= 0.7 * r["total"], \
            f"high-contention commit rate collapsed: {r['committed']}" \
            f"/{r['total']}"
    # The gated claim: the crossover *direction*, not its magnitude.
    assert low_speedup > 1.0, \
        f"OCC should win low-contention read-heavy (got {low_speedup:.2f}x)"
    assert high_speedup > 1.0, \
        f"2PL should win high-contention rmw (got {high_speedup:.2f}x)"

    benchmark.extra_info["low_contention_occ_speedup"] = low_speedup
    benchmark.extra_info["high_contention_2pl_speedup"] = high_speedup
    emit_bench_json(
        "txn_cc",
        {
            "occ_low_tps": (occ_low["tps"], True),
            "twopl_low_tps": (twopl_low["tps"], True),
            "occ_high_tps": (occ_high["tps"], True),
            "twopl_high_tps": (twopl_high["tps"], True),
            "low_contention_occ_speedup": (low_speedup, True),
            "high_contention_2pl_speedup": (high_speedup, True),
        },
        extra={
            "seeds": list(SEEDS),
            "cases": {case: {k: v for k, v in spec.items()}
                      for case, spec in CASES.items()},
            "results": {f"{cc}_{case}": {
                "tps": r["tps"], "committed": r["committed"],
                "total": r["total"], "attempts": r["attempts"]}
                for (cc, case), r in results.items()},
        })

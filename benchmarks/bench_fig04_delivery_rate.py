"""Figure 4: message delivery rate for different small message sizes.

Paper: with the optimizations, the number of messages delivered per
second is about the same for 1 B, 128 B, 1 KB and 10 KB — throughput is
proportional to message size in this range.
"""

from _common import emit, emit_bench_json, pick, run_once

from repro.analysis import figure_banner, format_table
from repro.core.config import SpindleConfig
from repro.workloads import single_subgroup

SIZES = [1, 128, 1024, 10240]
NODES = pick([2, 8, 16], [2, 8])


def bench_fig04_delivery_rate(benchmark):
    def experiment():
        return {
            (n, size): single_subgroup(
                n, "all", SpindleConfig.optimized(),
                message_size=size, count=pick(200, 120))
            for n in NODES for size in SIZES
        }

    results = run_once(benchmark, experiment)
    rows = []
    for n in NODES:
        rates = [results[(n, size)].message_rate / 1e6 for size in SIZES]
        rows.append([n] + [f"{r:.2f}" for r in rates])
    text = figure_banner(
        "Figure 4", "Delivery rate (million msgs/s) vs message size",
        "delivery rate roughly constant across 1 B .. 10 KB",
    ) + "\n" + format_table(
        ["n"] + [f"{s} B" for s in SIZES], rows)
    emit("fig04_delivery_rate", text)

    # Shape: per-n, rates across sizes stay within a modest factor.
    for n in NODES:
        rates = [results[(n, size)].message_rate for size in SIZES]
        assert max(rates) / min(rates) < 3.0
    benchmark.extra_info["rate_16_10KB_mps"] = (
        results[(NODES[-1], 10240)].message_rate)

    emit_bench_json("fig04_delivery_rate", {
        "rate_maxnodes_10KB_mps":
            results[(NODES[-1], 10240)].message_rate / 1e6,
    }, extra={"nodes": NODES, "sizes": SIZES})

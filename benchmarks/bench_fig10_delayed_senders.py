"""Figure 10: sender-delay test with null-sends.

Paper: with one or half of the senders delayed by 1 µs / 100 µs /
indefinitely, throughput of the remaining senders *increases* in every
case except half-indefinite (peaking at 10 GB/s): small delays enlarge
batches, large delays free bandwidth. Nulls keep inter-delivery times of
continuous senders low (§4.2.1: 3.779 µs at 2 nodes -> 1.192 µs at 16).
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.sim.units import us
from repro.workloads import delayed_senders, single_subgroup

N = 8
CONFIG = SpindleConfig.batching_and_nulls()

CASES = [
    ("one, 1us", [0], us(1), False),
    ("one, 100us", [0], us(100), False),
    ("one, forever", [0], None, True),
    ("half, 1us", list(range(N // 2)), us(1), False),
    ("half, 100us", list(range(N // 2)), us(100), False),
    ("half, forever", list(range(N // 2)), None, True),
]


def bench_fig10_delayed_senders(benchmark):
    def experiment():
        results = {"none": single_subgroup(N, "all", CONFIG, count=150)}
        for name, delayed, delay, indefinite in CASES:
            results[name] = delayed_senders(
                N, delayed=delayed, delay=delay or 0.0, config=CONFIG,
                count=150, indefinite=indefinite,
                delayed_count=40 if not indefinite else 2)
        return results

    results = run_once(benchmark, experiment)
    base = results["none"].throughput
    rows = [["no delay", gbps(base), "1.00", "-"]]
    for name, *_ in CASES:
        r = results[name]
        inter = r.extras.get("interdelivery_continuous", 0.0)
        rows.append([name, gbps(r.throughput),
                     f"{r.throughput / base:.2f}",
                     f"{inter * 1e6:.2f}us"])
    text = figure_banner(
        "Figure 10", f"Delayed senders with null-sends ({N} nodes, 10 KB)",
        "throughput holds or rises under delays (except half-forever); "
        "nulls keep continuous senders' inter-delivery times low",
    ) + "\n" + format_table(
        ["case", "GB/s", "vs no delay", "interdelivery"], rows)
    emit("fig10_delayed_senders", text)

    # Shape: the system absorbs delays — single-sender delays keep
    # nearly all of the undelayed throughput (the paper even saw gains:
    # our deterministic fabric has no per-sender bandwidth reclaim, so
    # we hold steady rather than rise), and the delivery pipeline never
    # stalls on the delayed senders.
    assert results["one, 1us"].throughput > 0.85 * base
    assert results["one, forever"].throughput > 0.85 * base
    assert results["one, 100us"].throughput > 0.7 * base
    assert results["half, forever"].throughput > 0.55 * base
    # Nulls keep continuous senders' messages flowing: mean
    # inter-delivery gaps stay at microsecond scale, far below the
    # injected 100 us delay.
    for name, *_ in CASES:
        inter = results[name].extras.get("interdelivery_continuous", 0.0)
        assert inter < 50e-6, name
    benchmark.extra_info["ratio_one_100us"] = (
        results["one, 100us"].throughput / base)

    emit_bench_json("fig10_delayed_senders", {
        "ratio_one_100us": results["one, 100us"].throughput / base,
    })

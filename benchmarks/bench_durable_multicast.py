"""Durable atomic multicast: the cost of the Paxos-equivalent mode.

Paper §2.1 (footnote): "Derecho atomic multicast is equivalent to
Vertical Paxos, and its persistent atomic multicast is equivalent to
the classical durable Paxos."

This benchmark measures what durability costs on top of the optimized
volatile multicast: delivery throughput (the storage thread works off
the critical path, so it should hold), and the durability lag — how far
the globally-durable watermark trails delivery.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.workloads import Cluster, continuous_sender

NODES = [2, 4, 8]
COUNT = 120
SIZE = 10240


def run_case(n, persistent):
    cluster = Cluster(n, config=SpindleConfig.optimized())
    cluster.add_subgroup(message_size=SIZE, window=50, persistent=persistent)
    cluster.build()
    durable_at = {}
    delivered_at = {}
    if persistent:
        cluster.group(0).on_durable(
            0, lambda w: durable_at.setdefault(w, cluster.sim.now))
    cluster.group(0).on_delivery(
        0, lambda d: delivered_at.setdefault(d.seq, cluster.sim.now))
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=COUNT, size=SIZE))
    cluster.run_to_quiescence(max_time=60.0)
    cluster.assert_all_delivered(0, per_sender=COUNT)
    throughput = cluster.aggregate_throughput(0)
    lag = 0.0
    if persistent:
        final_seq = max(delivered_at)
        lag = durable_at[max(durable_at)] - delivered_at[final_seq]
        engine = cluster.group(0).persistence[0]
        assert len(engine.log) == n * COUNT
    return throughput, lag


def bench_durable_multicast(benchmark):
    def experiment():
        return {
            (n, persistent): run_case(n, persistent)
            for n in NODES for persistent in (False, True)
        }

    results = run_once(benchmark, experiment)
    rows = []
    for n in NODES:
        volatile, _ = results[(n, False)]
        durable, lag = results[(n, True)]
        rows.append([n, gbps(volatile), gbps(durable),
                     f"{durable / volatile:.2f}", f"{lag * 1e6:.0f}"])
    text = figure_banner(
        "§2.1 footnote", "Durable (Paxos-equivalent) vs volatile multicast",
        "storage runs off the critical path: delivery throughput holds; "
        "durability trails by the SSD append + ack round",
    ) + "\n" + format_table(
        ["n", "volatile GB/s", "durable GB/s", "ratio", "durability lag (us)"],
        rows)
    emit("durable_multicast", text)

    for n in NODES:
        volatile, _ = results[(n, False)]
        durable, lag = results[(n, True)]
        assert durable > 0.7 * volatile   # off-critical-path persistence
        assert lag > 0                    # durability strictly trails
    benchmark.extra_info["lag_us_8"] = results[(8, True)][1] * 1e6

    emit_bench_json("durable_multicast", {
        "lag_us_8": (results[(8, True)][1] * 1e6, False),
    })

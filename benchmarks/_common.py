"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table/figure of the paper's evaluation:
it runs the corresponding experiment *once* inside pytest-benchmark
(wall-clock measured is the simulation cost; the scientific output is
the simulated metrics), prints a paper-style table, archives it under
``benchmarks/results/``, and — via :func:`emit_bench_json` — writes a
schema-versioned machine-readable ``BENCH_<name>.json`` artifact at the
repository root for the CI perf-regression gate
(``benchmarks/check_regressions.py``).

Quick mode: setting ``SPINDLE_BENCH_QUICK=1`` asks benchmarks to shrink
their parameter grids (fewer nodes/messages) so a smoke subset finishes
in CI-friendly time; use :func:`quick_mode` / :func:`pick` to honor it.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Callable, Dict, Mapping, Optional, Union

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Version of the BENCH_<name>.json artifact schema. Bump on breaking
#: changes; the CI gate refuses artifacts with a mismatched version.
BENCH_SCHEMA_VERSION = 1


def quick_mode() -> bool:
    """True when ``SPINDLE_BENCH_QUICK`` asks for reduced parameters."""
    return os.environ.get("SPINDLE_BENCH_QUICK", "").strip().lower() in (
        "1", "true", "yes", "on")


def pick(full: Any, quick: Any) -> Any:
    """Choose a benchmark parameter: ``full`` normally, ``quick`` when
    ``SPINDLE_BENCH_QUICK=1`` (CI smoke runs)."""
    return quick if quick_mode() else full


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    box: Dict[str, Any] = {}

    def wrapper():
        box["value"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return box["value"]


def _atomic_write(path: str, body: str) -> None:
    """Write ``body`` to ``path`` atomically (tmp file + rename), so a
    crashed or parallel run never leaves a truncated artifact behind."""
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(body)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def emit(name: str, text: str) -> None:
    """Print a results table and archive it under benchmarks/results/.

    The archived copy is newline-normalized (exactly one trailing
    newline, ``\\n`` endings) and written atomically.
    """
    print(text)
    body = text.replace("\r\n", "\n").rstrip("\n") + "\n"
    _atomic_write(os.path.join(RESULTS_DIR, f"{name}.txt"), body)


ScalarSpec = Union[int, float, Mapping[str, Any], tuple]


def _normalize_scalar(value: ScalarSpec) -> Dict[str, Any]:
    """Accept ``v``, ``(v, higher_is_better)`` or ``{"value": v, ...}``."""
    if isinstance(value, Mapping):
        return {"value": float(value["value"]),
                "higher_is_better": bool(value.get("higher_is_better", True))}
    if isinstance(value, tuple):
        v, higher = value
        return {"value": float(v), "higher_is_better": bool(higher)}
    return {"value": float(value), "higher_is_better": True}


def emit_bench_json(
    name: str,
    scalars: Mapping[str, ScalarSpec],
    extra: Optional[Mapping[str, Any]] = None,
) -> str:
    """Write the machine-readable ``BENCH_<name>.json`` artifact.

    ``scalars`` maps metric name to either a bare number (assumed
    higher-is-better), a ``(value, higher_is_better)`` tuple, or a
    ``{"value": ..., "higher_is_better": ...}`` dict. Only scalars are
    gated by CI; ``extra`` carries free-form context (parameters,
    quick-mode flag) that the gate ignores.

    Artifacts land at the repository root (override the directory with
    ``SPINDLE_BENCH_DIR``). Returns the path written.
    """
    out_dir = os.environ.get("SPINDLE_BENCH_DIR", REPO_ROOT)
    payload: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "quick_mode": quick_mode(),
        "scalars": {k: _normalize_scalar(v) for k, v in sorted(scalars.items())},
    }
    if extra:
        payload["extra"] = {k: extra[k] for k in sorted(extra)}
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    _atomic_write(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path

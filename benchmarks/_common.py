"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table/figure of the paper's evaluation:
it runs the corresponding experiment *once* inside pytest-benchmark
(wall-clock measured is the simulation cost; the scientific output is
the simulated metrics), prints a paper-style table, and records the key
numbers in ``benchmark.extra_info`` and under ``benchmarks/results/``.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def run_once(benchmark, fn: Callable[[], Any]) -> Any:
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    box: Dict[str, Any] = {}

    def wrapper():
        box["value"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return box["value"]


def emit(name: str, text: str) -> None:
    """Print a results table and archive it under benchmarks/results/."""
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")

"""Engine raw speed: optimized scheduler vs the reference loop, A/B.

The simulator rewrite (docs/ENGINE.md) replaced the flat-heap event
loop with a now-queue + calendar-bucket scheduler, slot-indexed SST
cells, generation-counter predicate memoization, and a no-Timer fast
path through the predicate thread. This benchmark is the honest A/B:
the *same* sharded-KV workload (the ``bench_sharded_kv`` load) runs
under ``engine="optimized"`` and ``engine="reference"`` with the same
seed, and the two runs must produce **byte-identical trace
fingerprints** — that assertion is the point of the dual-engine
design, and it is gated here on every CI run.

Two measurements, both gated against committed baselines:

* **end-to-end** — wall-clock (best-of-N) to drive the full sharded-KV
  service to quiescence in each mode, plus the deterministic
  simulated-turn counts and predicate-eval savings;
* **scheduler replay** — the bare event loop executing an identical
  pre-drawn callback schedule (a bench-derived mix of zero-delay
  posts, sub-microsecond sleeps, and far timers) in each mode, which
  isolates the calendar queue from protocol costs.

Honest framing of the raw-speed target: the rewrite's acceptance goal
was a 5x simulated-events/sec improvement, recorded below as
``target_speedup``. The levers compatible with byte-identical traces
(turn elimination, memoization, allocation-free scheduling) deliver
the achieved ratios; the remaining levers (folding falsy predicate
passes across lock releases) provably reorder same-timestamp events
and are rejected by the determinism gate — docs/ENGINE.md, "why falsy
runs are not folded further". The gate here enforces (a) fingerprint
identity and (b) no regression of the achieved speedups, not the
aspirational target.
"""

import json
import os
import time
from random import Random

from _common import (REPO_ROOT, _atomic_write, emit, emit_bench_json, pick,
                     run_once)

from repro.analysis import figure_banner, format_table
from repro.analysis.trace import Tracer
from repro.core.config import SpindleConfig
from repro.shard import RouterConfig
from repro.sim.engine import Simulator
from repro.workloads import Cluster, SloStats, open_loop_client

NODES = 8
SHARDS = 4
REPLICATION = 2
ENGINES = ("optimized", "reference")

#: The rewrite's acceptance target (ISSUE: ">= 5x simulated-events/sec").
#: Recorded in the artifact next to the achieved ratios; see the module
#: docstring for why the determinism contract caps what is achievable.
TARGET_SPEEDUP = 5.0


def run_mode(engine, *, clients, ops_per_client, rate, seed=3):
    """One end-to-end sharded-KV run under the given engine."""
    cluster = Cluster(NODES, config=SpindleConfig.optimized(), seed=seed,
                      engine=engine)
    cluster.add_shards(num_shards=SHARDS, replication=REPLICATION,
                       num_subgroups=SHARDS, window=16, message_size=512)
    cluster.build()
    router = cluster.router(RouterConfig(queue_depth=128,
                                         workers_per_shard=2))
    tracer = Tracer(cluster, capacity=1_000_000)
    tracer.attach()

    stats = SloStats()
    for c in range(clients):
        rng = Random(seed * 7919 + c)
        cluster.spawn_sender(
            open_loop_client(
                cluster.sim,
                lambda k, c=c: router.request(
                    "put", b"c%d.k%d" % (c, k), b"v" * 64),
                rate=rate, count=ops_per_client, rng=rng, stats=stats,
                name=f"client{c}"),
            name=f"client{c}")

    # Host wall-clock IS the measurand here (engine speed, not
    # simulated time); the bench never feeds it back into the sim.
    start = time.perf_counter()  # spindle-lint: allow[nondet-wall-clock]
    cluster.run_to_quiescence(max_time=30.0)
    wall = time.perf_counter() - start  # spindle-lint: allow[nondet-wall-clock]

    threads = [group.thread for group in cluster.groups.values()]
    evals_total = sum(t.evals_total for t in threads)
    evals_skipped = sum(t.evals_skipped for t in threads)
    assert tracer.dropped == 0, "trace capacity exceeded: fingerprint void"
    return {
        "engine": engine,
        "wall": wall,
        "fingerprint": tracer.fingerprint(),
        "ok": stats.ok,
        "submitted": stats.submitted,
        "rejected": stats.rejected,
        "events_executed": cluster.sim.events_executed,
        "peak_pending": cluster.sim.peak_pending_events,
        "evals_total": evals_total,
        "evals_skipped": evals_skipped,
        "sim_now": cluster.sim.now,
        "profile": cluster.stage_profile(),
    }


def run_mode_best(engine, *, repeats, **params):
    """Best-of-``repeats`` wall clock; everything simulated must be
    bit-identical across repeats (same seed => same run)."""
    runs = [run_mode(engine, **params) for _ in range(repeats)]
    best = min(runs, key=lambda r: r["wall"])
    for r in runs[1:]:
        assert r["fingerprint"] == runs[0]["fingerprint"], \
            f"{engine}: fingerprint unstable across repeats"
        assert r["events_executed"] == runs[0]["events_executed"]
    return best


def replay_schedule(total, seed=11):
    """Pre-draw the callback mix once so both engines execute the exact
    same schedule. The mix mirrors the sharded-KV load's shape: mostly
    zero-delay posts (predicate turns, lock hand-offs), a band of
    sub-microsecond sleeps (SST poll and RDMA hops), a tail of
    millisecond timers (client arrivals, quiescence guards)."""
    rng = Random(seed)
    return [rng.random() for _ in range(total)]


def run_replay(engine, mix, chains=64):
    """Drive a bare Simulator through the pre-drawn schedule."""
    sim = Simulator(seed=0, engine=engine)
    total = len(mix)
    post = sim.post
    post_after = sim.post_after

    def schedule(i):
        r = mix[i]
        if r < 0.55:
            post(step, i)
        elif r < 0.95:
            post_after(1e-7 + 8e-7 * r, step, i)
        else:
            post_after(1e-3 * r, step, i)

    def step(i):
        j = i + chains
        if j < total:
            schedule(j)

    for c in range(min(chains, total)):
        schedule(c)
    start = time.perf_counter()  # spindle-lint: allow[nondet-wall-clock]
    sim.run()
    wall = time.perf_counter() - start  # spindle-lint: allow[nondet-wall-clock]
    assert sim.events_executed == total
    return {
        "engine": engine,
        "wall": wall,
        "events": total,
        "events_per_sec": total / wall,
        "peak_pending": sim.peak_pending_events,
        "sim_now": sim.now,
    }


def run_replay_best(engine, mix, *, repeats, chains=64):
    runs = [run_replay(engine, mix, chains=chains) for _ in range(repeats)]
    best = min(runs, key=lambda r: r["wall"])
    for r in runs[1:]:
        assert r["sim_now"] == runs[0]["sim_now"], \
            f"{engine}: replay end time unstable"
    return best


def bench_engine_speed(benchmark):
    clients = pick(8, 4)
    ops = pick(300, 80)
    rate = pick(400_000.0, 200_000.0)
    repeats = pick(3, 2)
    replay_events = pick(400_000, 120_000)

    def experiment():
        end_to_end = {
            engine: run_mode_best(engine, repeats=repeats, clients=clients,
                                  ops_per_client=ops, rate=rate)
            for engine in ENGINES
        }
        mix = replay_schedule(replay_events)
        replay = {
            engine: run_replay_best(engine, mix, repeats=repeats)
            for engine in ENGINES
        }
        return end_to_end, replay

    end_to_end, replay = run_once(benchmark, experiment)
    opt, ref = end_to_end["optimized"], end_to_end["reference"]
    ropt, rref = replay["optimized"], replay["reference"]

    # ---- the determinism gate: same protocol run, byte for byte ------
    fingerprints_match = opt["fingerprint"] == ref["fingerprint"]
    assert fingerprints_match, (
        "optimized and reference engines diverged:\n"
        f"  optimized {opt['fingerprint']}\n"
        f"  reference {ref['fingerprint']}")
    assert opt["ok"] == ref["ok"] and opt["submitted"] == ref["submitted"]
    assert opt["ok"] + opt["rejected"] == opt["submitted"]
    assert opt["sim_now"] == ref["sim_now"]

    # ---- deterministic work reduction --------------------------------
    turn_reduction = ref["events_executed"] / opt["events_executed"]
    assert opt["events_executed"] < ref["events_executed"], \
        "optimized engine should retire fewer scheduler turns"
    eval_savings = (opt["evals_skipped"] / opt["evals_total"]
                    if opt["evals_total"] else 0.0)
    assert opt["evals_skipped"] > 0, "memoization never fired"
    assert ref["evals_skipped"] == 0, "reference loop must stay eager"

    # ---- wall-clock speedups (ratios: machine speed cancels) ---------
    speedup = ref["wall"] / opt["wall"]
    sched_speedup = rref["wall"] / ropt["wall"]
    assert speedup > 1.0, f"end-to-end speedup {speedup:.2f}x <= 1x"
    assert sched_speedup > 1.0, \
        f"scheduler replay speedup {sched_speedup:.2f}x <= 1x"

    rows = [
        [r["engine"], f'{r["wall"] * 1e3:,.1f}', f'{r["events_executed"]:,}',
         f'{r["events_executed"] / r["wall"]:,.0f}', f'{r["peak_pending"]:,}',
         f'{r["evals_skipped"]:,}/{r["evals_total"]:,}',
         r["fingerprint"][:12]]
        for r in (opt, ref)
    ]
    replay_rows = [
        [r["engine"], f'{r["wall"] * 1e3:,.1f}', f'{r["events"]:,}',
         f'{r["events_per_sec"]:,.0f}', f'{r["peak_pending"]:,}']
        for r in (ropt, rref)
    ]
    text = figure_banner(
        "engine_speed",
        f"Dual-engine A/B: sharded KV, {NODES} nodes, {clients} clients "
        f"@ {rate:,.0f}/s; replay of {replay_events:,} scheduler events",
        "optimized engine is faster with a byte-identical trace",
    ) + "\n" + format_table(
        ["engine", "wall (ms)", "sim events", "events/s", "peak pending",
         "evals skipped/total", "fingerprint"], rows,
    ) + "\n\n" + format_table(
        ["replay engine", "wall (ms)", "events", "events/s",
         "peak pending"], replay_rows,
    ) + (f"\n\nend-to-end speedup {speedup:.2f}x, scheduler replay "
         f"{sched_speedup:.2f}x, turn reduction {turn_reduction:.2f}x, "
         f"eval savings {eval_savings:.1%} "
         f"(target {TARGET_SPEEDUP:.0f}x; see docs/ENGINE.md)")
    emit("engine_speed", text)

    benchmark.extra_info["end_to_end_speedup"] = speedup
    benchmark.extra_info["scheduler_replay_speedup"] = sched_speedup
    benchmark.extra_info["fingerprint"] = opt["fingerprint"]

    # Per-stage time breakdown of both modes, uploaded as a CI artifact
    # (the partition must agree between engines up to the fast path's
    # fewer SST_POST spans — eyeball material for perf work, not gated).
    out_dir = os.environ.get("SPINDLE_BENCH_DIR", REPO_ROOT)
    _atomic_write(
        os.path.join(out_dir, "engine_speed_stage_profile.json"),
        json.dumps({
            "optimized": opt["profile"],
            "reference": ref["profile"],
            "wall_seconds": {"optimized": opt["wall"],
                             "reference": ref["wall"]},
        }, indent=2, sort_keys=True) + "\n")

    emit_bench_json("engine_speed", {
        # Hard determinism gate: any divergence drops this to 0.
        "fingerprint_match": 1.0 if fingerprints_match else 0.0,
        # Ratios are robust to runner speed; gated at the default 25%.
        "end_to_end_speedup": speedup,
        "scheduler_replay_speedup": sched_speedup,
        # Deterministic scalars: identical on every machine.
        "turn_reduction": turn_reduction,
        "eval_savings_ratio": eval_savings,
        # Absolute throughput is machine-dependent (waived in OVERRIDES,
        # kept for trend plots).
        "events_per_sec_optimized":
            opt["events_executed"] / opt["wall"],
    }, extra={
        "target_speedup": TARGET_SPEEDUP,
        "target_note": (
            "5x was the rewrite's aspirational acceptance target; the "
            "achieved ratios are the best available without breaking "
            "byte-identical seeded traces (docs/ENGINE.md explains the "
            "determinism ceiling). The gate enforces fingerprint "
            "identity and no regression of the achieved speedups."),
        "clients": clients,
        "ops_per_client": ops,
        "rate_per_client": rate,
        "repeats": repeats,
        "replay_events": replay_events,
        "fingerprint": opt["fingerprint"],
        "end_to_end": {
            eng: {k: v for k, v in r.items() if k != "profile"}
            for eng, r in end_to_end.items()
        },
        "scheduler_replay": replay,
    })

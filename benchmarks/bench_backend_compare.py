"""Backend comparison: Spindle's SST multicast vs the Multi-Paxos
baseline on identical workloads (docs/ORDERING.md).

The paper's argument is architectural — replacing leader-mediated
quorum rounds with one-sided SST counter pushes removes both the
leader's fan-in/fan-out bottleneck and the per-message handler CPU.
This bench quantifies that on the simulated fabric: the fig03/fig04/
fig16-style single-subgroup loads run unchanged on both backends (only
``backend=`` differs), and the Paxos chaos scenarios re-run to pin
that the baseline stays correct while losing.

Gated scalars: fig16-style throughput for both backends and their
ratio (``fig16_speedup`` must stay > 1 — Spindle beats Paxos), the
fig04-style delivery rates, and chaos health.
"""

from _common import emit, emit_bench_json, pick, run_once

from repro.analysis import figure_banner, format_table, gbps
from repro.core.config import SpindleConfig
from repro.faults.scenarios import run_scenario
from repro.workloads import single_subgroup

BACKENDS = ["spindle", "paxos"]
CHAOS = ["paxos-leader-crash", "paxos-partition-heal",
         "paxos-crash-restart-rejoin"]


def bench_backend_compare(benchmark):
    n = pick(8, 4)
    count = pick(120, 40)
    window = pick(64, 32)

    def experiment():
        out = {}
        for backend in BACKENDS:
            # fig16-style headline: 10 KB, all senders, optimized stack.
            out[(backend, "fig16")] = single_subgroup(
                n, "all", SpindleConfig.optimized(), message_size=10240,
                count=count, window=window, backend=backend)
            # fig03-style: the one-sender pattern (leader-bound for
            # Paxos only when the sender is not the leader's node).
            out[(backend, "fig03_one")] = single_subgroup(
                n, "one", SpindleConfig.optimized(), message_size=10240,
                count=count, window=window, backend=backend)
            # fig04-style: small messages, delivery *rate* not bytes.
            out[(backend, "fig04")] = single_subgroup(
                n, "all", SpindleConfig.optimized(), message_size=1024,
                count=count, window=window, backend=backend)
        out["chaos"] = {name: run_scenario(name, seed=7) for name in CHAOS}
        return out

    results = run_once(benchmark, experiment)

    rows = []
    for load, metric in [("fig16", "GB/s"), ("fig03_one", "GB/s"),
                         ("fig04", "Mmsg/s")]:
        row = [load]
        for backend in BACKENDS:
            r = results[(backend, load)]
            row.append(gbps(r.throughput) if metric == "GB/s"
                       else f"{r.message_rate / 1e6:.2f}")
        spindle = results[("spindle", load)]
        paxos = results[("paxos", load)]
        row.append(f"{spindle.throughput / paxos.throughput:.2f}x")
        rows.append(row)
    chaos = results["chaos"]
    text = figure_banner(
        "Backend compare",
        f"Spindle vs Multi-Paxos, {n} nodes (quick={count <= 40})",
        "same fabric, same workload; only the ordering protocol differs",
    ) + "\n" + format_table(
        ["load", "spindle", "paxos", "spindle/paxos"], rows,
    ) + "\nchaos: " + ", ".join(
        f"{name}={'ok' if chaos[name].ok else 'FAIL'}" for name in CHAOS)
    emit("backend_compare", text)

    for name in CHAOS:
        assert chaos[name].ok, (name, chaos[name].problems)

    fig16_spindle = results[("spindle", "fig16")].throughput
    fig16_paxos = results[("paxos", "fig16")].throughput
    speedup = fig16_spindle / fig16_paxos
    # The architectural claim, as a hard floor: the SST multicast must
    # beat the quorum baseline on the headline load.
    assert speedup > 1.0, (fig16_spindle, fig16_paxos)
    benchmark.extra_info["fig16_speedup"] = speedup

    emit_bench_json("backend_compare", {
        "fig16_spindle_gbps": fig16_spindle / 1e9,
        "fig16_paxos_gbps": fig16_paxos / 1e9,
        "fig16_speedup": speedup,
        "fig03_one_spindle_gbps":
            results[("spindle", "fig03_one")].throughput / 1e9,
        "fig03_one_paxos_gbps":
            results[("paxos", "fig03_one")].throughput / 1e9,
        "fig04_spindle_mrps":
            results[("spindle", "fig04")].message_rate / 1e6,
        "fig04_paxos_mrps":
            results[("paxos", "fig04")].message_rate / 1e6,
        "fig16_spindle_latency_us":
            (results[("spindle", "fig16")].latency_us, False),
        "fig16_paxos_latency_us":
            (results[("paxos", "fig16")].latency_us, False),
        "chaos_ok": float(all(chaos[name].ok for name in CHAOS)),
    }, extra={
        "nodes": n, "count": count, "window": window,
        "chaos_scenarios": CHAOS,
        "chaos_fingerprints": {
            name: chaos[name].trace_fingerprint for name in CHAOS},
    })

"""Figure 4 remark: SMC vs RDMC — where the large-message plane wins.

Paper (caption of Fig. 4): "Derecho has a second communication layer,
RDMC, for very large subgroups or messages... shifting to it might be
advisable for subgroups with more than 12 members."

This benchmark compares the per-message dissemination time of SMC's
sequential unicast against RDMC's relay schedules across subgroup sizes
and message sizes, locating the crossover.
"""

from _common import emit, emit_bench_json, run_once

from repro.analysis import figure_banner, format_table
from repro.rdma import RdmaFabric
from repro.rdmc import RdmcGroup
from repro.sim import Simulator

NODES = [4, 8, 12, 16]
SIZES = [64 * 1024, 1 << 20, 8 << 20]
BLOCK = 256 * 1024


def dissemination_time(n: int, scheme: str, size: int) -> float:
    sim = Simulator()
    fabric = RdmaFabric(sim)
    members = [fabric.add_node().node_id for _ in range(n)]
    group = RdmcGroup(fabric, members,
                      block_size=min(BLOCK, size), scheme=scheme)
    session = group.multicast(members[0], size)
    sim.run()
    return max(session.completion_time(m) for m in members)


def bench_rdmc_crossover(benchmark):
    def experiment():
        return {
            (n, size, scheme): dissemination_time(n, scheme, size)
            for n in NODES for size in SIZES
            for scheme in ("sequential", "binomial", "binomial_pipeline")
        }

    results = run_once(benchmark, experiment)
    rows = []
    for size in SIZES:
        for n in NODES:
            seq = results[(n, size, "sequential")]
            tree = results[(n, size, "binomial")]
            pipe = results[(n, size, "binomial_pipeline")]
            rows.append([
                f"{size // 1024} KB", n,
                f"{seq * 1e6:.0f}", f"{tree * 1e6:.0f}",
                f"{pipe * 1e6:.0f}", f"{seq / pipe:.1f}x",
            ])
    text = figure_banner(
        "Fig. 4 remark", "SMC (sequential) vs RDMC dissemination time (us)",
        "RDMC advisable for larger subgroups/messages; relay pipelines "
        "keep time nearly flat in n",
    ) + "\n" + format_table(
        ["message", "n", "sequential", "binomial", "pipeline", "advantage"],
        rows)
    emit("rdmc_crossover", text)

    # Shapes: sequential grows ~linearly with n, and RDMC wins at 16
    # members for every size (the paper's ">12 members" advice)...
    for size in SIZES:
        seq_growth = (results[(16, size, "sequential")]
                      / results[(4, size, "sequential")])
        assert seq_growth > 3.0
        assert (results[(16, size, "binomial_pipeline")]
                < results[(16, size, "sequential")])
    # ...the block pipeline is nearly flat in n once there are enough
    # blocks to pipeline (the 8 MB case)...
    pipe_growth = (results[(16, 8 << 20, "binomial_pipeline")]
                   / results[(4, 8 << 20, "binomial_pipeline")])
    assert pipe_growth < 1.6
    # ...and the crossover is real: for small messages at small n the
    # simple sequential send is still the right choice (why SMC exists).
    assert (results[(4, 64 * 1024, "sequential")]
            < results[(4, 64 * 1024, "binomial_pipeline")])
    benchmark.extra_info["advantage_16_8MB"] = (
        results[(16, 8 << 20, "sequential")]
        / results[(16, 8 << 20, "binomial_pipeline")])

    emit_bench_json("rdmc_crossover", {
        "advantage_16_8MB": results[(16, 8 << 20, "sequential")]
        / results[(16, 8 << 20, "binomial_pipeline")],
    })

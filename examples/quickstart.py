#!/usr/bin/env python3
"""Quickstart: a 4-node atomic multicast group with Spindle optimizations.

Builds a simulated 4-node cluster (12.5 GB/s RDMA fabric, as in the
paper's testbed), creates one subgroup where every node is a sender,
streams 1 KB messages, and shows that every node delivers the same
messages in the same total order — plus the throughput/latency metrics
the paper reports.

Run:  python examples/quickstart.py
"""

from repro import Cluster, SpindleConfig
from repro.workloads import continuous_sender

NUM_NODES = 4
MESSAGES_PER_SENDER = 100
MESSAGE_SIZE = 1024


def main():
    cluster = Cluster(num_nodes=NUM_NODES, config=SpindleConfig.optimized())
    subgroup = cluster.add_subgroup(message_size=MESSAGE_SIZE, window=50)
    cluster.build()

    # Register a delivery upcall on every node.
    logs = {node: [] for node in cluster.node_ids}
    for node in cluster.node_ids:
        cluster.group(node).on_delivery(
            subgroup.subgroup_id,
            lambda d, node=node: logs[node].append((d.seq, d.sender, d.payload)),
        )

    # Every node streams messages in a tight loop (an application thread).
    for node in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(node, subgroup.subgroup_id),
            count=MESSAGES_PER_SENDER,
            size=MESSAGE_SIZE,
            payload_fn=lambda k, node=node: f"node{node}-msg{k}".encode(),
        ))

    cluster.run_to_quiescence()

    # --- verify the atomic multicast guarantees -----------------------------
    reference = logs[cluster.node_ids[0]]
    total = NUM_NODES * MESSAGES_PER_SENDER
    assert len(reference) == total
    assert all(logs[node] == reference for node in cluster.node_ids)
    print(f"all {NUM_NODES} nodes delivered the same {total} messages "
          "in the same order")
    print("first five deliveries:",
          [(seq, payload.decode()) for seq, _, payload in reference[:5]])

    # --- the paper's metrics -------------------------------------------------
    throughput = cluster.aggregate_throughput(subgroup.subgroup_id)
    latency = cluster.mean_latency(subgroup.subgroup_id)
    stats = cluster.group(0).stats(subgroup.subgroup_id)
    send_mean, recv_mean, deliv_mean = stats.mean_batches
    print(f"throughput: {throughput / 1e9:.2f} GB/s "
          f"(averaged over nodes, simulated)")
    print(f"mean queue-to-delivery latency: {latency * 1e6:.1f} us")
    print(f"mean opportunistic batch sizes: send {send_mean:.1f}, "
          f"receive {recv_mean:.1f}, delivery {deliv_mean:.1f}")
    print(f"RDMA writes posted fabric-wide: "
          f"{cluster.fabric.total_writes_posted():,}")


if __name__ == "__main__":
    main()

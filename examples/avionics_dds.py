#!/usr/bin/env python3
"""Avionics DDS: the paper's motivating application (§1, §4.6).

A small onboard data distribution system: five nodes exchange flight
data over topics with different QoS levels —

* ``imu``       — high-rate inertial samples, UNORDERED (freshest wins),
* ``nav.state`` — navigation state, ATOMIC multicast (all consumers see
  the same ordered stream),
* ``alt.radar`` — radar altimeter, VOLATILE storage (late joiners catch
  up from the history),
* ``flight.log``— flight-recorder entries, LOGGED to SSD.

Run:  python examples/avionics_dds.py
"""

from repro import SpindleConfig
from repro.dds import DdsDomain, QosLevel, QosProfile, StructType

FLIGHT_COMPUTER, IMU, RADAR, DISPLAY, RECORDER = range(5)

NavState = StructType("NavState", [
    ("lat", "d"), ("lon", "d"), ("alt", "f"), ("heading", "f"),
])
ImuSample = StructType("ImuSample", [
    ("ax", "f"), ("ay", "f"), ("az", "f"), ("t", "d"),
])


def main():
    domain = DdsDomain(num_nodes=5, config=SpindleConfig.optimized())

    imu_topic = domain.create_topic(
        "imu", publishers=[IMU], subscribers=[FLIGHT_COMPUTER, DISPLAY],
        data_type=ImuSample, qos=QosProfile(QosLevel.UNORDERED),
        message_size=64, window=32)
    nav_topic = domain.create_topic(
        "nav.state", publishers=[FLIGHT_COMPUTER],
        subscribers=[DISPLAY, RECORDER], data_type=NavState,
        qos=QosProfile(QosLevel.ATOMIC), message_size=64, window=32)
    radar_topic = domain.create_topic(
        "alt.radar", publishers=[RADAR],
        subscribers=[FLIGHT_COMPUTER, DISPLAY],
        qos=QosProfile(QosLevel.VOLATILE, history_depth=16),
        message_size=32, window=32)
    log_topic = domain.create_topic(
        "flight.log", publishers=[FLIGHT_COMPUTER],
        subscribers=[RECORDER], qos=QosProfile(QosLevel.LOGGED),
        message_size=128, window=16)
    domain.build()

    # --- subscribers ----------------------------------------------------------
    display_nav = []
    domain.participant(DISPLAY).create_reader(
        nav_topic, listener=lambda s: display_nav.append(s.value))
    imu_seen = []
    domain.participant(FLIGHT_COMPUTER).create_reader(
        imu_topic, listener=lambda s: imu_seen.append(s.value))
    radar_reader = domain.participant(DISPLAY).create_reader(radar_topic)
    domain.participant(RECORDER).create_reader(log_topic)
    domain.participant(RECORDER).create_reader(nav_topic)

    # --- publishers -----------------------------------------------------------
    imu_writer = domain.participant(IMU).create_writer(imu_topic)
    nav_writer = domain.participant(FLIGHT_COMPUTER).create_writer(nav_topic)
    radar_writer = domain.participant(RADAR).create_writer(radar_topic)
    log_writer = domain.participant(FLIGHT_COMPUTER).create_writer(log_topic)

    def imu_task():
        for k in range(200):
            yield from imu_writer.write(
                {"ax": 0.01 * k, "ay": -0.02, "az": 9.81, "t": k * 0.005})
        imu_writer.finish()

    def nav_task():
        lat, lon, alt = 48.86, 2.35, 10000.0
        for k in range(100):
            lat += 1e-4
            alt -= 5.0
            yield from nav_writer.write(
                {"lat": lat, "lon": lon, "alt": alt, "heading": 271.0})
            yield from log_writer.write(
                b"NAV k=%03d alt=%07.1f" % (k, alt))
        nav_writer.finish()
        log_writer.finish()

    def radar_task():
        for k in range(150):
            yield from radar_writer.write(b"radar-alt:%05d" % (9000 - 3 * k))
        radar_writer.finish()

    domain.spawn(imu_task())
    domain.spawn(nav_task())
    domain.spawn(radar_task())
    domain.run_to_quiescence(max_time=10.0)

    # --- report ----------------------------------------------------------------
    print(f"IMU samples seen by flight computer (unordered): {len(imu_seen)}")
    print(f"Nav states on the display (atomic): {len(display_nav)}; "
          f"last altitude {display_nav[-1]['alt']:.0f} ft")
    history = radar_reader.store.snapshot()
    print(f"Radar history retained on display (volatile, depth 16): "
          f"{len(history)}; latest {history[-1][1].decode()}")
    log = domain.ssd_log(RECORDER)
    print(f"Flight-recorder SSD log: {len(log)} entries, "
          f"{log.total_bytes} bytes; last: "
          f"{log.replay(log_topic.topic_id)[-1][1].decode()}")
    for topic in (imu_topic, nav_topic, radar_topic, log_topic):
        print(f"  topic {topic.name!r:12s} QoS {topic.qos.level.name:9s} "
              f"throughput {domain.topic_throughput(topic) / 1e6:8.1f} MB/s")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Recreate the paper's Table 1: the SST of 5 nodes in 3 subgroups.

Builds the exact configuration of §2.2/§2.3 — nodes {0..4}, subgroups
{0,1,2}, {0,1,3} and {0,2,4} (the last two with restricted senders) —
drives some traffic, and prints node 0's local copy of the shared state
table: the received_num / delivered_num control columns and the SMC
slot counters.

Run:  python examples/sst_table_demo.py
"""

from repro import Cluster, SpindleConfig
from repro.workloads import continuous_sender


def main():
    cluster = Cluster(num_nodes=5, config=SpindleConfig.optimized())
    # Subgroup memberships exactly as in Table 1; in subgroup 1 only
    # nodes 0 and 1 are senders ("thus the slots in node 3's row are
    # not used").
    cluster.add_subgroup(members=[0, 1, 2], window=3, message_size=64)
    cluster.add_subgroup(members=[0, 1, 3], senders=[0, 1], window=2,
                         message_size=64)
    cluster.add_subgroup(members=[0, 2, 4], window=1, message_size=64)
    cluster.build()

    # Some traffic: subgroups 0 and 1 are active, subgroup 2 is idle.
    for node in (0, 1, 2):
        cluster.spawn_sender(continuous_sender(
            cluster.mc(node, 0), count=9, size=64,
            payload_fn=lambda k, node=node: b"sg0-%d-%d" % (node, k)))
    for node in (0, 1):
        cluster.spawn_sender(continuous_sender(
            cluster.mc(node, 1), count=7, size=64,
            payload_fn=lambda k, node=node: b"sg1-%d-%d" % (node, k)))
    cluster.run_to_quiescence()

    sst = cluster.group(0).sst

    print("Table 1a analogue: atomic multicast control state at node 0")
    print("(received_num r[g] and delivered_num d[g] per subgroup; '-' "
          "means the row owner is not a member)\n")
    control_cols = []
    for sg in range(3):
        cols = cluster.mc(0, sg).cols if sg in cluster.group(0).multicasts \
            else None
    # Node 0 belongs to all three subgroups, so we can take the column
    # indices from its own endpoints.
    for sg in range(3):
        cols = cluster.group(0).subgroup(sg).cols
        control_cols += [cols.received, cols.delivered]
    print(sst.format_table(columns=control_cols))

    print("\nTable 1b analogue: SMC slot state at node 0 "
          "(slot cells: (real_index, round, size) or None)\n")
    members_of = {0: [0, 1, 2], 1: [0, 1, 3], 2: [0, 2, 4]}
    for sg in range(3):
        cols = cluster.group(0).subgroup(sg).cols
        window = cols.window
        print(f"subgroup {sg} (members {members_of[sg]}, window {window}):")
        for owner in sst.members:
            row = []
            for slot_index in range(window):
                value = sst.read(owner, cols.first_slot + slot_index)
                if owner not in members_of[sg]:
                    row.append("   -   ")
                elif value is None:
                    row.append("(empty)")
                else:
                    row.append(f"({value.real_index},{value.round_index})")
            print(f"  node {owner}: " + "  ".join(row))
    print("\nNote: counters are monotonic; a peer that sees a counter "
          "advance k steps knows k messages arrived (the basis for "
          "Spindle's batched acknowledgments).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A replicated key-value store on the Spindle-optimized multicast.

The paper's introduction names "key-value stores that replicate data"
as part of the class of systems Spindle targets. This example runs a
3-replica store: concurrent writers converge through the total order,
compare-and-swap elects exactly one lock owner, and a fenced read is
linearizable even from a replica that did not perform the write.

For the horizontally scaled version of this store — the keyspace
consistent-hash-partitioned over several independent subgroup total
orders, with a request router and live failover — see
examples/sharded_kvstore.py and docs/SHARDING.md.

Run:  python examples/replicated_kvstore.py
"""

from repro import Cluster, SpindleConfig
from repro.apps import attach_store

REPLICAS = 3


def main():
    cluster = Cluster(num_nodes=REPLICAS, config=SpindleConfig.optimized())
    cluster.add_subgroup(message_size=512, window=16)
    cluster.build()
    stores = {n: attach_store(cluster.group(n), 0)
              for n in cluster.node_ids}

    outcomes = {}

    def writer(node):
        store = stores[node]
        for k in range(20):
            yield from store.put(b"config/%d/%d" % (node, k),
                                 b"value-%d" % k)
        # Everyone writes the same contended key...
        yield from store.put(b"leader-hint", b"node-%d" % node)
        # ...and races a CAS for the lock.
        won = yield from store.cas(b"mission-lock", b"", b"held-by-%d" % node)
        outcomes[node] = won

    for node in cluster.node_ids:
        cluster.spawn_sender(writer(node))
    cluster.run_to_quiescence()

    checksums = {store.checksum() for store in stores.values()}
    print(f"{REPLICAS} replicas, {stores[0].applied} commands applied "
          f"each; identical state everywhere: {len(checksums) == 1}")

    winner = [n for n, won in outcomes.items() if won]
    print(f"mission-lock CAS winners: {winner} (exactly one: "
          f"{len(winner) == 1})")
    print(f"leader-hint converged to: "
          f"{stores[0].read(b'leader-hint').decode()!r} on all replicas: "
          f"{len({s.read(b'leader-hint') for s in stores.values()}) == 1}")

    observed = {}

    def linearizable_reader():
        yield from stores[0].put(b"altitude", b"FL350")
        value = yield from stores[2].sync_read(b"altitude")
        observed["value"] = value

    cluster.spawn_sender(linearizable_reader())
    cluster.run_to_quiescence()
    print(f"fenced read from replica 2 after replica 0's write: "
          f"{observed['value'].decode()!r} (linearizable)")


if __name__ == "__main__":
    main()

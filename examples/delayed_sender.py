#!/usr/bin/env python3
"""Null-sends in action: a lagging sender must not stall the group.

Recreates the paper's Figure 2 scenario (§3.3): with round-robin
delivery order, one delayed sender leaves everyone else's messages
stuck at the receivers — unless the null-send scheme fills the gaps.

Runs the same workload twice (with and without null-sends) and prints
what each configuration managed to deliver.

Run:  python examples/delayed_sender.py
"""

from repro import Cluster, SpindleConfig
from repro.sim.units import ms, us
from repro.workloads import continuous_sender

NUM_NODES = 4
FAST_MESSAGES = 60
SLOW_MESSAGES = 8
SLOW_DELAY = us(200)  # the slow sender pauses 200 us after each send


def run(config, label):
    cluster = Cluster(num_nodes=NUM_NODES, config=config)
    subgroup = cluster.add_subgroup(message_size=4096, window=16)
    cluster.build()

    # Node 0 is slow; everyone else streams at full speed.
    cluster.spawn_sender(continuous_sender(
        cluster.mc(0, 0), count=SLOW_MESSAGES, size=4096, delay=SLOW_DELAY))
    for node in range(1, NUM_NODES):
        cluster.spawn_sender(continuous_sender(
            cluster.mc(node, 0), count=FAST_MESSAGES, size=4096))

    cluster.run(until=ms(20))
    expected = SLOW_MESSAGES + (NUM_NODES - 1) * FAST_MESSAGES
    stats = cluster.group(1).stats(0)
    nulls = sum(cluster.group(n).stats(0).nulls_sent
                for n in cluster.node_ids)
    print(f"{label}:")
    print(f"  delivered at node 1: {stats.delivered}/{expected} "
          f"(nulls sent group-wide: {nulls})")
    if stats.delivered:
        print(f"  mean inter-delivery gap from a fast sender: "
              f"{stats.mean_interdelivery(1) * 1e6:.2f} us")
    return stats.delivered, expected


def main():
    without, expected = run(SpindleConfig.batching_only(),
                            "WITHOUT null-sends")
    with_nulls, _ = run(SpindleConfig.batching_and_nulls(),
                        "WITH null-sends   ")
    print()
    if without < expected and with_nulls == expected:
        print("-> without nulls the round-robin order stalls on the slow "
              "sender;")
        print("   with nulls the group runs at full speed and still "
              "delivers all messages.")


if __name__ == "__main__":
    main()

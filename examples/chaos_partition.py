#!/usr/bin/env python3
"""Chaos engineering on the fault plane: a partition that heals.

Four nodes stream atomic multicasts while the fault plane cuts the
network into two halves — with RC "buffer" semantics, so in-flight
writes are held like a reliable connection retrying across a transient
outage. The cut lasts long enough for every node to *locally* suspect
the far side, but heals inside the confirmation grace window: the
suspicions are rescinded (no view change), the held writes are
redelivered in per-QP order, and the workload finishes with identical
delivery logs everywhere.

The whole run is driven through a declarative, seeded FaultSchedule;
the script prints the schedule JSON that replays it byte-for-byte
(``cluster.faults.apply(FaultSchedule.from_json(...))``), which is also
what `spindle-repro chaos` ships to CI as a failure artifact.

Run:  python examples/chaos_partition.py
"""

from repro import Cluster, SpindleConfig
from repro.sim.units import ms, us
from repro.workloads import continuous_sender

NUM_NODES = 4
MESSAGES = 80
CUT_AT = ms(1.0)
HEAL_AT = ms(1.8)


def main():
    cluster = Cluster(num_nodes=NUM_NODES,
                      config=SpindleConfig.optimized(), seed=7)
    cluster.add_subgroup(message_size=512, window=10)
    cluster.enable_membership(heartbeat_period=us(100),
                              suspicion_timeout=us(500),
                              confirmation_grace=us(600))
    cluster.build()

    logs = {n: [] for n in cluster.node_ids}
    views = {n: [] for n in cluster.node_ids}
    for n in cluster.node_ids:
        cluster.group(n).on_delivery(
            0, lambda d, n=n: logs[n].append((d.seq, d.sender)))
        cluster.group(n).membership.on_new_view.append(
            lambda v, n=n: views[n].append(v))

    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(n, 0), count=MESSAGES, size=512))

    # The fault: {0,1} | {2,3}, healing inside the grace window.
    cluster.faults.partition([[0, 1], [2, 3]],
                             at=CUT_AT, heal_at=HEAL_AT, mode="buffer")
    cluster.run(until=ms(60))

    plane = cluster.faults
    print(f"partition {CUT_AT * 1e3:.1f} ms -> {HEAL_AT * 1e3:.1f} ms "
          f"(healed: {plane.heals == 1})")
    print(f"writes held across the cut: {plane.writes_held}, "
          f"redelivered at heal: {plane.writes_redelivered}")

    alarms = sum(sum(cluster.group(n).membership.false_alarms.values())
                 for n in cluster.node_ids)
    torn = any(views[n] for n in cluster.node_ids)
    print(f"local suspicions rescinded as false alarms: {alarms}")
    print(f"view change triggered: {torn} (suspicions healed inside the "
          f"confirmation grace)")

    expected = MESSAGES * NUM_NODES
    reference = logs[cluster.node_ids[0]]
    agree = all(logs[n] == reference for n in cluster.node_ids)
    print(f"delivered {len(reference)}/{expected} at every node, "
          f"identical order despite the partition: {agree}")
    print(f"replayable schedule: {plane.schedule.to_json()}")


if __name__ == "__main__":
    main()

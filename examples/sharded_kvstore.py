#!/usr/bin/env python3
"""A sharded KV service over multiple Spindle total orders.

One subgroup is one total order — its delivery rate bounds a single
service no matter how many clients arrive. The sharded service plane
(docs/SHARDING.md) partitions the keyspace over four shards hosted on
two independent subgroups: a consistent-hash shard map routes every
key, a request router applies admission control and replays requests
idempotently across view changes, and a gateway crash mid-run is
absorbed without a single lost or duplicated write.

Compare examples/replicated_kvstore.py for the single-subgroup store
this generalizes.

Run:  python examples/sharded_kvstore.py
"""

from repro import Cluster, SpindleConfig
from repro.sim.units import ms, us

NODES = 6
SHARDS = 4
CLIENTS = 3
PUTS = 15


def main():
    cluster = Cluster(num_nodes=NODES, config=SpindleConfig.optimized(),
                      seed=1)
    # 4 shards over 2 subgroups of 3 replicas each: sg0={0,1,2},
    # sg1={3,4,5}.
    cluster.add_shards(num_shards=SHARDS, replication=3, num_subgroups=2,
                       window=8, message_size=512)
    cluster.enable_membership(heartbeat_period=us(100),
                              suspicion_timeout=us(500))
    cluster.build()
    cluster.enable_recovery()  # auto-install committed failure views
    router = cluster.router()

    print(f"{SHARDS} shards on subgroups "
          f"{sorted(set(router.map.placement().values()))} "
          f"(placement {router.map.placement()})")

    outcomes = []
    expected = {}

    def client(c):
        for i in range(PUTS):
            key = b"user/%d/%d" % (c, i)
            value = b"profile-%d-%d" % (c, i)
            outcome = yield from router.request("put", key, value)
            outcomes.append(outcome)
            if outcome.status == "ok":
                expected[key] = value
            yield us(60)

    for c in range(CLIENTS):
        cluster.spawn_sender(client(c), name=f"client-{c}")

    # Crash the gateway of subgroup 0 while clients are mid-stream: the
    # membership plane confirms the failure, the recovery plane installs
    # the successor view, and the router replays in-flight requests
    # idempotently on the promoted gateway.
    cluster.faults.crash(0, at=us(400))
    cluster.run(until=ms(40))

    ok = sum(1 for o in outcomes if o.status == "ok")
    print(f"{len(outcomes)} requests routed, {ok} completed ok across "
          f"the gateway crash (gateway changes: "
          f"{router.counters.gateway_changes}, epoch retries: "
          f"{router.counters.epoch_retries})")
    print(f"final view {cluster.view.members} excludes the crashed "
          f"gateway: {0 not in cluster.view.members}")

    # Every key readable through the router's stale fast path, and the
    # cross-shard verifier agrees replica state is consistent.
    intact = all(router.stale_read(k) == v for k, v in expected.items())
    audit = router.verifier.check()
    print(f"all {len(expected)} keys intact after failover: {intact}")
    print(f"cross-shard audit: {audit.shards_checked} shards, "
          f"{audit.keys_checked} keys, violations: "
          f"{len(audit.violations)} (clean: {audit.ok})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Virtual synchrony: surviving a node crash mid-stream.

Five nodes stream atomic multicasts; node 3 crashes partway through.
The membership service detects the failure through stale heartbeats,
wedges the group, performs the ragged-edge trim (every survivor
delivers exactly the same prefix), and installs the successor view.
The application then resends the messages that died with the old view
and finishes the workload in the new one.

Run:  python examples/view_change.py
"""

from repro import Cluster, SpindleConfig
from repro.sim.units import ms, us
from repro.workloads import continuous_sender

NUM_NODES = 5
MESSAGES = 300
CRASH_NODE = 3
CRASH_AT = ms(1.0)


def main():
    cluster = Cluster(num_nodes=NUM_NODES, config=SpindleConfig.optimized())
    cluster.add_subgroup(message_size=512, window=8)
    cluster.enable_membership(heartbeat_period=us(100),
                              suspicion_timeout=us(500))
    cluster.build()

    logs = {n: [] for n in cluster.node_ids}
    views = {n: [] for n in cluster.node_ids}
    for n in cluster.node_ids:
        cluster.group(n).on_delivery(
            0, lambda d, n=n: logs[n].append((d.seq, d.sender)))
        cluster.group(n).membership.on_new_view.append(
            lambda v, n=n: views[n].append(v))

    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(n, 0), count=MESSAGES, size=512))
    cluster.sim.call_after(CRASH_AT, cluster.fail_node, CRASH_NODE)
    cluster.run(until=ms(100))

    survivors = [n for n in cluster.node_ids if n != CRASH_NODE]
    new_view = views[survivors[0]][-1]
    print(f"node {CRASH_NODE} crashed at {CRASH_AT * 1e3:.1f} ms "
          f"(simulated)")
    print(f"new view v{new_view.view_id} installed with members "
          f"{new_view.members}")

    reference = logs[survivors[0]]
    agree = all(logs[n] == reference for n in survivors)
    print(f"survivors delivered {len(reference)} messages before the "
          f"cut, identical order at all survivors: {agree}")

    # Virtual synchrony: resend what died with the old view.
    undelivered = {n: cluster.mc(n, 0).undelivered_own_messages()
                   for n in survivors}
    resend_total = sum(len(v) for v in undelivered.values())
    print(f"undelivered messages to resend in the new view: {resend_total}")

    cluster.install_view(new_view)
    for n in survivors:
        cluster.group(n).on_delivery(
            0, lambda d, n=n: logs[n].append((d.seq, d.sender)))

    def resender(n):
        mc = cluster.mc(n, 0)
        for slot in undelivered[n]:
            yield from mc.send(slot.size, slot.payload)
        mc.mark_finished()

    before = len(reference)
    for n in survivors:
        cluster.spawn_sender(resender(n))
    cluster.run(until=ms(200))

    delivered_new = len(logs[survivors[0]]) - before
    print(f"delivered in the new view: {delivered_new} "
          f"(== resent: {delivered_new == resend_total})")
    agree = all(logs[n] == logs[survivors[0]] for n in survivors)
    print(f"total order maintained across the view change: {agree}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Large messages: when to leave SMC for RDMC.

The paper's Figure 4 notes that Derecho has a second communication
layer, RDMC, "for very large subgroups or messages", and that shifting
to it "might be advisable for subgroups with more than 12 members".

This example disseminates an 8 MB object to groups of growing size with
the three schemes and prints the dissemination time and effective
bandwidth, making the crossover visible.

Run:  python examples/large_messages_rdmc.py
"""

from repro.rdma import RdmaFabric
from repro.rdmc import RdmcGroup, SCHEMES
from repro.sim import Simulator

MESSAGE = 8 << 20        # 8 MB
BLOCK = 256 * 1024       # 256 KB blocks


def disseminate(n, scheme):
    sim = Simulator()
    fabric = RdmaFabric(sim)
    members = [fabric.add_node().node_id for _ in range(n)]
    group = RdmcGroup(fabric, members, block_size=BLOCK, scheme=scheme)
    payload = None  # timing-only; see tests for content-checked runs
    session = group.multicast(members[0], MESSAGE, payload)
    sim.run()
    assert session.complete
    return max(session.completion_time(m) for m in members)


def main():
    print(f"disseminating {MESSAGE >> 20} MB ({BLOCK >> 10} KB blocks) "
          "on a 12.5 GB/s fabric\n")
    header = f"{'n':>3} | " + " | ".join(f"{s:>22}" for s in SCHEMES)
    print(header)
    print("-" * len(header))
    for n in (2, 4, 8, 12, 16):
        cells = []
        for scheme in SCHEMES:
            t = disseminate(n, scheme)
            cells.append(f"{t * 1e3:7.2f} ms ({MESSAGE / t / 1e9:4.1f} GB/s)")
        print(f"{n:>3} | " + " | ".join(f"{c:>22}" for c in cells))
    print(
        "\nsequential time grows linearly with group size; the binomial\n"
        "tree grows with log2(n); the block pipeline stays nearly flat —\n"
        "the sender pushes each block once and receivers relay, so the\n"
        "whole fabric's bandwidth is put to work."
    )


if __name__ == "__main__":
    main()

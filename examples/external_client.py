#!/usr/bin/env python3
"""External DDS clients: publishing into the group through a relay.

The paper's DDS "also supports 'external clients' that connect to the
DDS via TCP or RDMA, requiring an extra relaying step" (§4.6). Here a
ground station (outside the RDMA group) publishes waypoint updates
through a relay member over TCP, and a maintenance laptop subscribes to
telemetry through another relay over RDMA. Relayed publishes gain the
same total-order guarantee as native ones.

Run:  python examples/external_client.py
"""

from repro import SpindleConfig
from repro.dds import (
    DdsDomain,
    ExternalClient,
    QosLevel,
    QosProfile,
    RDMA_TRANSPORT,
    TCP_TRANSPORT,
)

NODES = 4  # the onboard RDMA group


def main():
    domain = DdsDomain(NODES, config=SpindleConfig.optimized())
    waypoints = domain.create_topic(
        "waypoints", publishers=[0], subscribers=[1, 2, 3],
        qos=QosProfile(QosLevel.ATOMIC), message_size=256, window=16)
    telemetry = domain.create_topic(
        "telemetry", publishers=[1], subscribers=[0, 2, 3],
        qos=QosProfile(QosLevel.ATOMIC), message_size=256, window=16)
    domain.build()

    # Onboard subscribers to the waypoint stream.
    onboard = {n: [] for n in (1, 2, 3)}
    for n in onboard:
        domain.participant(n).create_reader(
            waypoints, listener=lambda s, n=n: onboard[n].append(s.value))

    # The ground station: external, TCP, relayed through node 0.
    ground = ExternalClient(domain, relay_node=0, transport=TCP_TRANSPORT,
                            name="ground-station")
    updates = [b"WPT %02d N48.8 E002.3 FL%03d" % (k, 310 + k)
               for k in range(10)]
    domain.spawn(ground.publisher(waypoints, updates))

    # The maintenance laptop: external, RDMA-connected, subscribing to
    # telemetry through node 2.
    laptop = ExternalClient(domain, relay_node=2, transport=RDMA_TRANSPORT,
                            name="laptop")
    laptop.subscribe(telemetry)

    telemetry_writer = domain.participant(1).create_writer(telemetry)

    def telemetry_task():
        for k in range(10):
            yield from telemetry_writer.write(b"ENG rpm=%05d" % (8200 + k))
        telemetry_writer.finish()

    domain.spawn(telemetry_task())
    domain.run_to_quiescence()

    print(f"ground station published {ground.published} waypoint updates "
          f"over {ground.transport.name.upper()}")
    same = all(onboard[n] == updates for n in onboard)
    print(f"all onboard nodes received them, in identical order: {same}")
    print(f"maintenance laptop received {len(laptop.received)} telemetry "
          f"samples over {laptop.transport.name.upper()}; last: "
          f"{laptop.received[-1].value.decode()}")


if __name__ == "__main__":
    main()

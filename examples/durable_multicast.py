#!/usr/bin/env python3
"""Durable atomic multicast: the Paxos-equivalent delivery mode.

Derecho's persistent atomic multicast "is equivalent to the classical
durable Paxos" (paper §2.1, footnote): every member appends delivered
messages to stable storage, and the application learns when a message
is durable on *every* replica — at which point it can be acknowledged
to an external client, survive any tolerated failure, and be replayed.

Run:  python examples/durable_multicast.py
"""

from repro import Cluster, SpindleConfig
from repro.workloads import continuous_sender

NODES = 3
MESSAGES = 40


def main():
    cluster = Cluster(num_nodes=NODES, config=SpindleConfig.optimized())
    cluster.add_subgroup(message_size=512, window=10, persistent=True)
    cluster.build()

    delivered_at = {}
    durable_at = {}
    cluster.group(0).on_delivery(
        0, lambda d: delivered_at.setdefault(d.seq, cluster.sim.now))
    cluster.group(0).on_durable(
        0, lambda watermark: durable_at.setdefault(watermark,
                                                   cluster.sim.now))

    for node in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(node, 0), count=MESSAGES, size=512,
            payload_fn=lambda k, node=node: b"txn-%d-%03d" % (node, k)))
    cluster.run_to_quiescence()

    total = NODES * MESSAGES
    engine = cluster.group(0).persistence[0]
    print(f"{total} messages delivered; durable log on node 0 holds "
          f"{len(engine.log)} entries ({engine.log_bytes} bytes, "
          f"{engine.batches} SSD batches)")

    # Replicated-log property: identical logs everywhere.
    logs = [cluster.group(n).persistence[0].replay()
            for n in cluster.node_ids]
    print("logs identical on every replica:",
          all(log == logs[0] for log in logs))

    # Durability trails delivery by the SSD append + acknowledgment round.
    last_seq = max(delivered_at)
    lag = durable_at[max(durable_at)] - delivered_at[last_seq]
    print(f"final message delivered at "
          f"{delivered_at[last_seq] * 1e6:.1f} us, globally durable "
          f"{lag * 1e6:.1f} us later")
    print("replay of the first three durable entries:",
          [payload.decode() for _, _, payload in engine.replay()[:3]])


if __name__ == "__main__":
    main()

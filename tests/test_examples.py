"""Smoke tests: every shipped example runs to completion.

Examples are documentation that executes; breaking one silently is how
reproduction repos rot. Each is run in-process (runpy) with stdout
captured and a few key lines asserted.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXPECTED_SNIPPETS = {
    "quickstart.py": "delivered the same",
    "avionics_dds.py": "Flight-recorder SSD log",
    "chaos_partition.py": "identical order despite the partition: True",
    "delayed_sender.py": "WITH null-sends",
    "sst_table_demo.py": "Table 1a analogue",
    "view_change.py": "total order maintained across the view change: True",
    "large_messages_rdmc.py": "binomial_pipeline",
    "external_client.py": "identical order: True",
    "durable_multicast.py": "logs identical on every replica: True",
    "replicated_kvstore.py": "exactly one: True",
    "sharded_kvstore.py": "violations: 0 (clean: True)",
}


@pytest.mark.parametrize("example", sorted(EXPECTED_SNIPPETS))
def test_example_runs(example, capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, example))
    assert os.path.exists(path), f"missing example {example}"
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert EXPECTED_SNIPPETS[example] in out


def test_every_example_has_a_smoke_test():
    on_disk = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert on_disk == set(EXPECTED_SNIPPETS), (
        "examples and smoke tests out of sync"
    )

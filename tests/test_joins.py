"""Tests for node joins at epoch boundaries (§2.1)."""

import pytest

from repro.core.config import SpindleConfig
from repro.core.membership import SubgroupSpec, View
from repro.workloads import Cluster, continuous_sender


class TestViewWithJoined:
    def make_view(self):
        return View(0, (0, 1, 2), (SubgroupSpec.of(0, [0, 1, 2]),
                                   SubgroupSpec.of(1, [0, 1])))

    def test_joiner_appended_to_membership(self):
        view = self.make_view().with_joined([5])
        assert view.members == (0, 1, 2, 5)
        assert view.view_id == 1
        assert view.joined == (5,)

    def test_joiner_added_to_all_subgroups_by_default(self):
        view = self.make_view().with_joined([5])
        assert all(5 in sg.members for sg in view.subgroups)
        assert all(5 in sg.senders for sg in view.subgroups)

    def test_join_specific_subgroups_only(self):
        view = self.make_view().with_joined([5], subgroups_to_join=[1])
        assert 5 not in view.subgroups[0].members
        assert 5 in view.subgroups[1].members

    def test_join_as_receiver_only(self):
        view = self.make_view().with_joined([5], as_senders=False)
        assert all(5 in sg.members for sg in view.subgroups)
        assert all(5 not in sg.senders for sg in view.subgroups)

    def test_existing_ranks_preserved(self):
        view = self.make_view().with_joined([5])
        assert view.subgroups[0].senders[:3] == (0, 1, 2)
        assert view.subgroups[0].rank_of(5) == 3

    def test_duplicate_or_existing_joiners_rejected(self):
        with pytest.raises(ValueError, match="already members"):
            self.make_view().with_joined([1])
        with pytest.raises(ValueError, match="duplicate"):
            self.make_view().with_joined([5, 5])


class TestJoinEndToEnd:
    def test_joiner_participates_in_next_epoch(self):
        """Run an epoch with 3 nodes, add a 4th at the boundary, run a
        second epoch where the joiner both receives and sends."""
        cluster = Cluster(3, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=512, window=8)
        cluster.build()
        for nid in (0, 1, 2):
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=20, size=512))
        cluster.run_to_quiescence()
        cluster.assert_all_delivered(0, per_sender=20)

        joiner = cluster.add_node()
        new_view = cluster.view.with_joined([joiner])
        cluster.install_view(new_view)

        logs = {nid: [] for nid in new_view.members}
        for nid in new_view.members:
            cluster.group(nid).on_delivery(
                0, lambda d, nid=nid: logs[nid].append((d.seq, d.sender)))
        for nid in new_view.members:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=15, size=512))
        cluster.run_to_quiescence()

        reference = logs[joiner]
        assert len(reference) == 4 * 15
        assert all(logs[nid] == reference for nid in new_view.members)
        assert any(sender == joiner for _, sender in reference)

    def test_joiner_not_addressable_before_install(self):
        cluster = Cluster(2, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=256, window=4)
        cluster.build()
        joiner = cluster.add_node()
        with pytest.raises(KeyError):
            cluster.mc(joiner, 0)

    def test_join_after_failure_recovery(self):
        """A failed node is replaced by a fresh one in the next view."""
        from repro.sim.units import ms, us

        cluster = Cluster(3, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=256, window=6)
        cluster.enable_membership(heartbeat_period=us(100),
                                  suspicion_timeout=us(500))
        cluster.build()
        views = []
        cluster.group(0).membership.on_new_view.append(views.append)
        cluster.sim.call_after(ms(1), cluster.fail_node, 2)
        cluster.run(until=ms(30))
        assert views and views[0].members == (0, 1)

        replacement = cluster.add_node()
        next_view = views[0].with_joined([replacement])
        cluster.install_view(next_view)
        for nid in next_view.members:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=10, size=256))
        cluster.run(until=ms(60))
        for nid in next_view.members:
            assert cluster.group(nid).stats(0).delivered == 30

"""Tests for the black-box linearizability auditor
(:mod:`repro.analysis.linearize`, docs/DURABILITY.md)."""

from repro.analysis.linearize import (HistoryRecorder, Op, check_history,
                                      selftest)


def put(client, key, value, invoked, returned):
    return Op(client=client, kind="put", key=key, value=value,
              invoked=invoked, returned=returned)


def get(client, key, value, invoked, returned):
    return Op(client=client, kind="get", key=key, value=value,
              invoked=invoked, returned=returned)


class TestChecker:
    def test_empty_history_is_linearizable(self):
        assert check_history([]).ok

    def test_sequential_history(self):
        ops = [put(0, b"k", b"v1", 0.0, 1.0),
               get(1, b"k", b"v1", 2.0, 3.0)]
        assert check_history(ops).ok

    def test_read_of_initial_none(self):
        assert check_history([get(0, b"k", None, 0.0, 1.0)]).ok

    def test_stale_read_is_a_violation(self):
        ops = [put(0, b"k", b"v1", 0.0, 1.0),
               put(0, b"k", b"v2", 2.0, 3.0),
               get(1, b"k", b"v1", 4.0, 5.0)]  # v2 already committed
        report = check_history(ops)
        assert not report.ok
        assert report.violations

    def test_concurrent_puts_allow_either_winner(self):
        base = [put(0, b"k", b"a", 0.0, 2.0),
                put(1, b"k", b"b", 0.0, 2.0)]
        for winner in (b"a", b"b"):
            ops = base + [get(2, b"k", winner, 3.0, 4.0)]
            assert check_history(ops).ok, winner

    def test_read_from_the_future_is_a_violation(self):
        ops = [get(0, b"k", b"v", 0.0, 1.0),     # returned before any put
               put(1, b"k", b"v", 2.0, 3.0)]
        assert not check_history(ops).ok

    def test_pending_put_may_take_effect_or_not(self):
        pending = Op(client=0, kind="put", key=b"k", value=b"v",
                     invoked=0.0, returned=None)
        # Observed: the pending put linearized.
        assert check_history([pending, get(1, b"k", b"v", 1.0, 2.0)]).ok
        # Never observed: it was dropped in flight.
        assert check_history([pending, get(1, b"k", None, 1.0, 2.0)]).ok

    def test_pending_put_cannot_linearize_before_invoke(self):
        pending = Op(client=0, kind="put", key=b"k", value=b"v",
                     invoked=5.0, returned=None)
        read = get(1, b"k", b"v", 0.0, 1.0)  # saw it before it existed
        assert not check_history([pending, read]).ok

    def test_keys_checked_independently(self):
        ops = [put(0, b"a", b"1", 0.0, 1.0),
               put(0, b"b", b"2", 2.0, 3.0),
               get(1, b"a", b"1", 4.0, 5.0),
               get(1, b"b", b"2", 4.0, 5.0)]
        report = check_history(ops)
        assert report.ok
        assert report.keys_checked == 2
        assert report.ops_checked == 4


class TestRecorder:
    def test_invoke_complete_drop_flow(self):
        rec = HistoryRecorder()
        a = rec.invoke(0, "put", b"k", b"v", 0.0)
        rec.complete(a, 1.0)
        b = rec.invoke(1, "put", b"k", b"x", 0.5)
        rec.drop(b)  # rejected before taking effect
        rec.record_read(2, b"k", b"v", 2.0)
        history = rec.history()
        assert len(history) == 2  # dropped op excluded
        assert check_history(history).ok

    def test_uncompleted_op_is_pending(self):
        rec = HistoryRecorder()
        rec.invoke(0, "put", b"k", b"v", 0.0)
        (op,) = rec.history()
        assert op.returned is None


class TestSelftest:
    def test_selftest_passes_and_catches_seeded_violation(self):
        ok, stale_report = selftest()
        assert ok
        assert not stale_report.ok

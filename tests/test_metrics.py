"""Tests for the metrics plane (docs/METRICS.md).

Covers the registry (identity, scoping, histogram bucketing, re-entrant
simulated-time timers), the null/zero-cost path, the JSON/Prometheus
exporters (golden files), SubgroupStats-as-a-view, the §4.1.1 stage
profile partition invariant, the byte-identical determinism guarantee,
and the benchmark artifact plumbing (atomic emit, BENCH_*.json schema,
CI regression gate).
"""

import json
import os
import sys

import pytest

from repro.core.config import SpindleConfig
from repro.core.stats import SubgroupStats
from repro.metrics import (
    MetricsRegistry,
    check_partition,
    null_registry,
    registry_enabled_from_env,
    stage_profile,
)
from repro.metrics.registry import NULL_METRIC
from repro.workloads import Cluster, continuous_sender

BENCH_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")


# ---------------------------------------------------------------------------
# Registry mechanics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_identity_and_monotonicity(self):
        reg = MetricsRegistry()
        c1 = reg.counter("requests_total", node=1, subgroup=0)
        c2 = reg.counter("requests_total", subgroup=0, node=1)  # reordered
        assert c1 is c2
        c1.inc()
        c1.inc(4)
        assert c2.value == 5
        with pytest.raises(ValueError):
            c1.inc(-1)
        c1.set_to(9)
        with pytest.raises(ValueError):
            c1.set_to(3)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError):
            reg.gauge("x_total")

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth")
        g.set(7)
        g.add(-2)
        assert g.value == 5

    def test_scoped_labels_stamp_and_nest(self):
        reg = MetricsRegistry()
        node = reg.scoped(node=3)
        sub = node.scoped(subgroup=1)
        c = sub.counter("spindle_messages_sent_total")
        assert dict(c.labels) == {"node": "3", "subgroup": "1"}
        c.inc(10)
        # Filtered queries see through scopes.
        assert reg.value("spindle_messages_sent_total", node=3) == 10
        assert reg.value("spindle_messages_sent_total", node=4) == 0

    def test_histogram_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("batch", buckets=(1, 4, 16))
        for v in (1, 2, 4, 5, 16, 17, 1000):
            h.observe(v)
        # Inclusive upper edges: 1 | 2,4 | 5,16 | +Inf: 17,1000
        assert h.counts == [1, 2, 2, 2]
        assert dict(h.cumulative()) == {"1": 1, "4": 3, "16": 5, "+Inf": 7}
        assert h.count == 7 and h.sum == 1045
        h.observe(3, count=5)  # weighted observation
        assert h.count == 12 and h.counts[1] == 7
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(4, 1))

    def test_timer_explicit_and_clocked(self):
        now = [0.0]
        reg = MetricsRegistry(clock=lambda: now[0])
        t = reg.timer("stage", stage="x")
        t.add(0.5, count=2)
        assert (t.total, t.count) == (0.5, 2)
        t.start()
        now[0] = 1.25
        t.stop()
        assert t.total == pytest.approx(1.75)
        with pytest.raises(ValueError):
            t.add(-1.0)
        with pytest.raises(RuntimeError):
            t.stop()

    def test_timer_reentrant_nesting_counts_outermost_span(self):
        """Nested start/stop on one timer bills only the outer span —
        the simulated clock keeps running across the nesting."""
        now = [10.0]
        reg = MetricsRegistry(clock=lambda: now[0])
        t = reg.timer("stage", stage="y")
        with t:
            now[0] = 11.0
            with t:          # re-entry: must not double-bill
                now[0] = 12.0
            now[0] = 13.0
        assert t.total == pytest.approx(3.0)
        assert t.count == 1

    def test_collectors_run_at_snapshot_time(self):
        reg = MetricsRegistry()
        external = {"drops": 0}
        reg.add_collector(
            lambda: reg.counter("drops_total").set_to(external["drops"]))
        external["drops"] = 3
        snap = reg.snapshot()
        assert snap["metrics"]["drops_total"]["value"] == 3

    def test_env_knob(self):
        assert registry_enabled_from_env(env={}) is True
        assert registry_enabled_from_env(env={"SPINDLE_METRICS": "0"}) is False
        assert registry_enabled_from_env(env={"SPINDLE_METRICS": "off"}) is False
        assert registry_enabled_from_env(env={"SPINDLE_METRICS": "1"}) is True


class TestNullRegistry:
    def test_factories_return_shared_noop(self):
        reg = null_registry()
        assert reg is null_registry()
        assert not reg.enabled
        c = reg.counter("a_total")
        assert c is NULL_METRIC
        assert c is reg.gauge("b") is reg.timer("c") is reg.histogram("d")
        # All mutators are no-ops; metric is falsy for `if metric:` gating.
        c.inc(5)
        c.set_to(10)
        with reg.timer("t"):
            pass
        assert not c
        assert reg.snapshot()["metrics"] == {}


# ---------------------------------------------------------------------------
# Exporter golden files
# ---------------------------------------------------------------------------


def _golden_registry() -> MetricsRegistry:
    now = [0.0]
    reg = MetricsRegistry(clock=lambda: now[0])
    reg.counter("spindle_demo_total", "demo counter", node=0).inc(3)
    reg.gauge("spindle_demo_gauge", node=0).set(1.5)
    h = reg.histogram("spindle_demo_batch", buckets=(1, 2), help="batches")
    h.observe(1)
    h.observe(2)
    h.observe(9)
    reg.timer("spindle_demo_time", stage="s").add(0.25, count=4)
    return reg


GOLDEN_JSON = """\
{
  "metrics": {
    "spindle_demo_batch": {
      "buckets": {
        "+Inf": 3,
        "1": 1,
        "2": 2
      },
      "count": 3,
      "kind": "histogram",
      "sum": 12,
      "value": null
    },
    "spindle_demo_gauge{node=\\"0\\"}": {
      "kind": "gauge",
      "value": 1.5
    },
    "spindle_demo_time{stage=\\"s\\"}": {
      "count": 4,
      "kind": "timer",
      "total_seconds": 0.25
    },
    "spindle_demo_total{node=\\"0\\"}": {
      "kind": "counter",
      "value": 3
    }
  },
  "schema_version": 1
}"""

GOLDEN_PROM = """\
# HELP spindle_demo_batch batches
# TYPE spindle_demo_batch histogram
spindle_demo_batch_bucket{le="1"} 1
spindle_demo_batch_bucket{le="2"} 2
spindle_demo_batch_bucket{le="+Inf"} 3
spindle_demo_batch_sum 12
spindle_demo_batch_count 3
# TYPE spindle_demo_gauge gauge
spindle_demo_gauge{node="0"} 1.5
# TYPE spindle_demo_time_seconds_total counter
spindle_demo_time_seconds_total{stage="s"} 0.25
# TYPE spindle_demo_time_spans_total counter
spindle_demo_time_spans_total{stage="s"} 4
# HELP spindle_demo_total demo counter
# TYPE spindle_demo_total counter
spindle_demo_total{node="0"} 3
"""


class TestExporters:
    def test_json_golden(self):
        got = json.loads(_golden_registry().to_json())
        want = json.loads(GOLDEN_JSON)
        # "value": null placeholder in the golden marks absence; drop it.
        want["metrics"]["spindle_demo_batch"].pop("value")
        assert got == want

    def test_prometheus_golden(self):
        assert _golden_registry().to_prometheus() == GOLDEN_PROM


# ---------------------------------------------------------------------------
# SubgroupStats as a registry view
# ---------------------------------------------------------------------------


class TestSubgroupStatsView:
    def test_records_flow_into_registry(self):
        reg = MetricsRegistry()
        stats = SubgroupStats(registry=reg, node=2, subgroup=0)
        for _ in range(3):
            stats.record_send(0.0)
        stats.record_received(7)
        stats.record_nulls_sent(2)
        stats.record_blocked_send()
        stats.add_sender_wait(0.5)
        assert stats.sent == 3
        assert stats.received == 7
        assert stats.nulls_sent == 2
        assert stats.sends_blocked == 1
        assert stats.sender_wait_time == pytest.approx(0.5)
        # ... and the same numbers are visible registry-side, labelled.
        assert reg.value("spindle_messages_sent_total", node=2) == 3
        assert reg.value("spindle_messages_received_total", node=2) == 7

    def test_disabled_registry_falls_back_to_private_store(self):
        """Protocol logic reads stats even when fabric metrics are off."""
        stats = SubgroupStats(registry=null_registry(), node=0, subgroup=0)
        for _ in range(5):
            stats.record_send(0.0)
        stats.record_delivery(1.0, 0, 100, queued_at=0.5)
        assert stats.sent == 5
        assert stats.delivered == 1
        assert stats.bytes_delivered == 100


# ---------------------------------------------------------------------------
# Cluster integration: profile partition + determinism
# ---------------------------------------------------------------------------


def _run_cluster(n=4, count=60, seed=0):
    cluster = Cluster(n, config=SpindleConfig.optimized(), seed=seed)
    cluster.add_subgroup(window=20, message_size=2048)
    cluster.build()
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=2048))
    cluster.run_to_quiescence(max_time=30.0)
    cluster.assert_all_delivered(0, per_sender=count)
    return cluster


class TestClusterMetrics:
    def test_stage_partition_within_5pct_of_busy_time(self):
        cluster = _run_cluster()
        profile = stage_profile(cluster.metrics)
        ok, deviation = check_partition(profile, tolerance=0.05)
        assert ok, f"stage partition off by {deviation:.2%}"
        assert profile["predicate_busy"] > 0
        # The partition also matches the threads' own busy-time sums.
        busy = sum(cluster.group(nid).thread.busy_time
                   for nid in cluster.node_ids)
        assert profile["partition_total"] == pytest.approx(busy, rel=0.05)

    def test_snapshot_contains_expected_families(self):
        cluster = _run_cluster(count=30)
        snap = cluster.metrics_snapshot()
        names = {key.split("{")[0] for key in snap["metrics"]}
        for family in (
            "spindle_messages_sent_total",
            "spindle_messages_delivered_total",
            "spindle_smc_writes_total",
            "spindle_sst_pushes_total",
            "spindle_stage_time_seconds",
            "spindle_predicate_busy_seconds",
            "spindle_nic_writes_posted_total",
            "spindle_rdma_writes_posted_total",
            "spindle_batch_size",
            "spindle_delivery_latency_seconds",
        ):
            assert family in names, family
        # Fabric mirrors agree with the NIC-side ground truth.
        assert (snap["metrics"]["spindle_rdma_writes_posted_total"]["value"]
                == cluster.fabric.total_writes_posted())

    def test_same_seed_runs_export_byte_identical_json(self):
        json_a = _run_cluster(count=40, seed=7).metrics_json()
        json_b = _run_cluster(count=40, seed=7).metrics_json()
        assert json_a == json_b

    def test_different_seed_changes_nothing_structural(self):
        # Different seeds may reorder deliveries but keep schema valid.
        snap = json.loads(_run_cluster(count=30, seed=3).metrics_json())
        assert snap["schema_version"] == 1
        assert snap["metrics"]

    def test_disabled_cluster_metrics_keep_protocol_working(self):
        cluster = Cluster(3, config=SpindleConfig.optimized(),
                          metrics=MetricsRegistry(enabled=False))
        cluster.add_subgroup(window=10, message_size=1024)
        cluster.build()
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=20, size=1024))
        cluster.run_to_quiescence(max_time=30.0)
        cluster.assert_all_delivered(0, per_sender=20)
        assert cluster.metrics_snapshot()["metrics"] == {}
        # Local stats still work (private fallback registry).
        assert cluster.group(0).stats(0).delivered == 60


# ---------------------------------------------------------------------------
# CLI subcommand
# ---------------------------------------------------------------------------


class TestMetricsCli:
    def run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_profile_partitions_busy_time(self, capsys):
        code, out = self.run(capsys, "metrics", "--nodes", "4",
                             "--count", "40", "--profile")
        assert code == 0
        assert "predicate busy" in out
        assert "partition check" in out and "ok" in out

    def test_json_format(self, capsys):
        code, out = self.run(capsys, "metrics", "--nodes", "2",
                             "--count", "20", "--format", "json")
        assert code == 0
        snap = json.loads(out)
        assert snap["schema_version"] == 1

    def test_prom_format(self, capsys):
        code, out = self.run(capsys, "metrics", "--nodes", "2",
                             "--count", "20", "--format", "prom")
        assert code == 0
        assert "# TYPE spindle_messages_sent_total counter" in out


# ---------------------------------------------------------------------------
# Benchmark artifact plumbing (benchmarks/_common.py + CI gate)
# ---------------------------------------------------------------------------


@pytest.fixture()
def bench_common(monkeypatch):
    monkeypatch.syspath_prepend(BENCH_DIR)
    import _common

    return _common


class TestBenchArtifacts:
    def test_emit_is_atomic_and_newline_normalized(self, bench_common,
                                                   monkeypatch, tmp_path,
                                                   capsys):
        monkeypatch.setattr(bench_common, "RESULTS_DIR", str(tmp_path))
        bench_common.emit("demo", "line1\r\nline2\n\n\n")
        body = (tmp_path / "demo.txt").read_bytes()
        assert body == b"line1\nline2\n"
        assert not list(tmp_path.glob("*.tmp"))  # no temp litter

    def test_emit_bench_json_schema(self, bench_common, monkeypatch,
                                    tmp_path):
        monkeypatch.setenv("SPINDLE_BENCH_DIR", str(tmp_path))
        path = bench_common.emit_bench_json(
            "demo",
            {"thr": 2.5, "lat_us": (9.0, False),
             "x": {"value": 1, "higher_is_better": True}},
            extra={"nodes": 4})
        data = json.loads(open(path, encoding="utf-8").read())
        assert data["schema_version"] == bench_common.BENCH_SCHEMA_VERSION
        assert data["name"] == "demo"
        assert data["scalars"]["thr"] == {"value": 2.5,
                                          "higher_is_better": True}
        assert data["scalars"]["lat_us"] == {"value": 9.0,
                                             "higher_is_better": False}
        assert data["extra"] == {"nodes": 4}

    def test_quick_mode_pick(self, bench_common, monkeypatch):
        monkeypatch.delenv("SPINDLE_BENCH_QUICK", raising=False)
        assert bench_common.pick("full", "quick") == "full"
        monkeypatch.setenv("SPINDLE_BENCH_QUICK", "1")
        assert bench_common.pick("full", "quick") == "quick"


class TestRegressionGate:
    def _gate(self):
        sys.path.insert(0, BENCH_DIR)
        try:
            import check_regressions
        finally:
            sys.path.remove(BENCH_DIR)
        return check_regressions

    def _artifact(self, name, **scalars):
        return {
            "schema_version": 1, "name": name,
            "scalars": {k: {"value": v[0], "higher_is_better": v[1]}
                        for k, v in scalars.items()},
        }

    def test_detects_regressions_in_both_directions(self):
        gate = self._gate()
        base = self._artifact("demo", thr=(10.0, True), lat=(10.0, False))
        # thr down 30% (bad), lat up 30% (bad) -> two failures.
        cur = self._artifact("demo", thr=(7.0, True), lat=(13.0, False))
        _, failures = gate.compare(cur, base, threshold=0.25, waived=set())
        assert set(failures) == {"demo.thr", "demo.lat"}
        # Within tolerance: 20% either way passes.
        cur = self._artifact("demo", thr=(8.0, True), lat=(12.0, False))
        _, failures = gate.compare(cur, base, threshold=0.25, waived=set())
        assert failures == []
        # Improvements never fail, however large.
        cur = self._artifact("demo", thr=(100.0, True), lat=(0.1, False))
        _, failures = gate.compare(cur, base, threshold=0.25, waived=set())
        assert failures == []

    def test_waivers(self):
        gate = self._gate()
        base = self._artifact("demo", thr=(10.0, True))
        cur = self._artifact("demo", thr=(1.0, True))
        _, failures = gate.compare(cur, base, threshold=0.25,
                                   waived={"demo.thr"})
        assert failures == []
        _, failures = gate.compare(cur, base, threshold=0.25,
                                   waived={"demo"})
        assert failures == []

    def test_gate_main_end_to_end(self, tmp_path, monkeypatch, capsys):
        gate = self._gate()
        art = tmp_path / "BENCH_demo.json"
        art.write_text(json.dumps(self._artifact("demo", thr=(5.0, True))))
        baselines = tmp_path / "baselines"
        baselines.mkdir()
        (baselines / "BENCH_demo.json").write_text(
            json.dumps(self._artifact("demo", thr=(10.0, True))))
        monkeypatch.setattr(gate, "BASELINE_DIR", str(baselines))
        monkeypatch.setattr(gate, "OVERRIDES_FILE",
                            str(baselines / "OVERRIDES"))
        assert gate.main(["--dir", str(tmp_path)]) == 1
        capsys.readouterr()
        (baselines / "OVERRIDES").write_text("demo.thr  accepted\n")
        assert gate.main(["--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "waived" in out

    def test_gate_rejects_bad_schema_and_min_artifacts(self, tmp_path,
                                                       monkeypatch, capsys):
        gate = self._gate()
        art = tmp_path / "BENCH_bad.json"
        art.write_text(json.dumps({"schema_version": 99, "name": "bad",
                                   "scalars": {}}))
        assert gate.main(["--dir", str(tmp_path)]) == 2
        capsys.readouterr()
        empty = tmp_path / "empty"
        empty.mkdir()
        assert gate.main(["--dir", str(empty), "--min-artifacts", "4"]) == 2

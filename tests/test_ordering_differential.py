"""Differential conformance: Spindle vs Multi-Paxos on one schedule.

Property: feeding the *same* seeded workload schedule through every
ordering backend must yield (a) the same delivered-payload multiset at
every node and (b) the same per-sender FIFO subsequences — while the
interleaved *total order* is allowed to differ (Spindle's round-robin
round structure and Paxos's leader batching legitimately serialize the
senders differently).

Hypothesis drives the schedule space (per-sender message counts, start
staggering, inter-send gaps, cluster seed) and shrinks any
counterexample to a minimal disagreeing schedule, which is the whole
point: a shrunk schedule is a direct repro for whichever backend broke
the contract.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import SpindleConfig
from repro.ordering import BACKENDS
from repro.sim.units import us
from repro.workloads import Cluster, continuous_sender
from repro.workloads.runner import drive_to_completion

NODES = 3
SIZE = 256
WINDOW = 4

schedules = st.fixed_dictionaries({
    "counts": st.lists(st.integers(min_value=0, max_value=6),
                       min_size=NODES, max_size=NODES),
    "start_us": st.lists(st.integers(min_value=0, max_value=120),
                         min_size=NODES, max_size=NODES),
    "gap_us": st.sampled_from([0, 15, 60]),
    "seed": st.integers(min_value=0, max_value=2**16),
})


def run_schedule(backend, schedule):
    """One cluster run of the schedule; returns per-node delivery logs
    of (sender, payload) tuples."""
    cluster = Cluster(NODES, config=SpindleConfig.optimized(),
                      seed=schedule["seed"], backend=backend)
    cluster.add_subgroup(window=WINDOW, message_size=SIZE)
    cluster.build()
    logs = {nid: [] for nid in cluster.node_ids}
    for nid in cluster.node_ids:
        cluster.group(nid).on_delivery(
            0, lambda d, nid=nid: logs[nid].append((d.sender, d.payload)))
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0),
            count=schedule["counts"][nid],
            size=SIZE,
            payload_fn=lambda k, nid=nid: f"{nid}:{k}".encode(),
            delay=us(schedule["gap_us"]),
            start_delay=us(schedule["start_us"][nid])))
    total = sum(schedule["counts"]) * NODES
    drive_to_completion(cluster, {0: total}, max_time=1.0)
    return logs


@given(schedule=schedules)
@settings(max_examples=12, deadline=None)
def test_backends_agree_on_content_and_fifo(schedule):
    runs = {name: run_schedule(name, schedule) for name in sorted(BACKENDS)}

    for name, logs in runs.items():
        # Internal agreement first (sharper failure than the diff below).
        reference = logs[0]
        for nid, log in logs.items():
            assert log == reference, f"{name}: node {nid} diverged"

    names = sorted(runs)
    base = runs[names[0]][0]
    for other_name in names[1:]:
        other = runs[other_name][0]
        assert sorted(p for _, p in base) == sorted(p for _, p in other), (
            f"{names[0]} and {other_name} delivered different payload sets")
        for sender in range(NODES):
            fifo_a = [p for s, p in base if s == sender]
            fifo_b = [p for s, p in other if s == sender]
            assert fifo_a == fifo_b, (
                f"{names[0]} and {other_name} disagree on sender "
                f"{sender}'s FIFO")


def test_total_order_is_allowed_to_differ():
    """Documentation-by-test: the backends really do serialize the same
    schedule differently (so the property above is not accidentally
    'the logs are equal')."""
    schedule = {"counts": [6, 6, 6], "start_us": [0, 10, 20],
                "gap_us": 15, "seed": 5}
    logs = {name: run_schedule(name, schedule)[0]
            for name in ("spindle", "paxos")}
    assert sorted(logs["spindle"]) == sorted(logs["paxos"])
    assert logs["spindle"] != logs["paxos"]

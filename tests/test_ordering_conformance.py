"""Backend-generic ordering conformance suite (docs/ORDERING.md).

Every test in this file is the executable definition of one clause of
the :class:`repro.ordering.OrderingEndpoint` contract, and every test
runs against **every registered backend** (the ``backend`` fixture
parametrizes over ``repro.ordering.BACKENDS``). A new backend is
conformant exactly when this file passes for it.

Clauses covered:

* total order — all members deliver identical logs;
* per-sender FIFO + gap-freedom — the deliveries from sender rank r,
  in log order, are r's proposals 0, 1, 2, ... with nothing skipped;
* exactly-once — no (sender, ticket) pair appears twice;
* ticket contract — :meth:`propose` returns the sender's 0-based
  proposal index, which equals the message's position in the sender's
  delivered FIFO;
* wedge-then-settle — after :meth:`wedge`, new proposals raise,
  congestion pins to 1.0, and members' logs settle into
  order-consistent prefixes of one another;
* stable-prefix — monotonic, and covers the whole log once the
  workload has fully delivered;
* determinism — the same (backend, seed, workload) reproduces the run
  byte-for-byte, trace fingerprints included.
"""

import pytest

from repro.analysis.trace import Tracer
from repro.core.config import SpindleConfig
from repro.ordering import BACKENDS
from repro.sim.units import ms, us
from repro.workloads import Cluster, continuous_sender
from repro.workloads.runner import drive_to_completion


@pytest.fixture(params=sorted(BACKENDS))
def backend(request):
    """Every registered ordering backend, by name."""
    return request.param


NODES = 4
COUNT = 25
SIZE = 512
WINDOW = 8


def payload_fn(nid):
    """Content-checked payloads: ``b"<node>:<k>"`` for the k-th send."""
    return lambda k, nid=nid: f"{nid}:{k}".encode()


def build(backend, seed=11, senders=None, window=WINDOW):
    cluster = Cluster(NODES, config=SpindleConfig.optimized(), seed=seed,
                      backend=backend)
    cluster.add_subgroup(senders=senders, window=window, message_size=SIZE)
    cluster.build()
    logs = {nid: [] for nid in cluster.node_ids}
    for nid in cluster.node_ids:
        cluster.group(nid).on_delivery(
            0, lambda d, nid=nid: logs[nid].append(
                (d.sender, d.sender_rank, d.seq, d.payload)))
    return cluster, logs


def full_run(backend, seed=11, count=COUNT, trace=False, jitter=False):
    """All nodes send ``count`` content-checked messages to completion.

    ``jitter=True`` adds seeded network jitter so the cluster seed has
    randomness to reach (a fault-free run on the simulated fabric is
    legitimately seed-invariant for both backends)."""
    cluster, logs = build(backend, seed=seed)
    tracer = None
    if trace:
        tracer = Tracer(cluster)
        tracer.attach()
    if jitter:
        cluster.faults.jitter(until=ms(20), extra_latency=us(1),
                              jitter=us(4), at=0.0)
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=SIZE,
            payload_fn=payload_fn(nid)))
    drive_to_completion(cluster, {0: count * NODES * NODES}, max_time=1.0)
    return cluster, logs, tracer


class TestTotalOrder:
    def test_all_members_deliver_identical_logs(self, backend):
        _, logs, _ = full_run(backend)
        reference = logs[0]
        assert len(reference) == COUNT * NODES
        for nid, log in logs.items():
            assert log == reference, f"node {nid} diverged"


class TestFifoGapFreeExactlyOnce:
    def test_per_sender_fifo_and_gap_freedom(self, backend):
        _, logs, _ = full_run(backend)
        for nid, log in logs.items():
            for sender in range(NODES):
                got = [p for (s, _, _, p) in log if s == sender]
                want = [f"{sender}:{k}".encode() for k in range(COUNT)]
                assert got == want, (
                    f"node {nid}: sender {sender} FIFO violated")

    def test_exactly_once(self, backend):
        _, logs, _ = full_run(backend)
        for nid, log in logs.items():
            payloads = [p for (_, _, _, p) in log]
            assert len(payloads) == len(set(payloads)), (
                f"node {nid} delivered a duplicate")

    def test_global_seq_is_dense(self, backend):
        _, logs, _ = full_run(backend)
        for nid, log in logs.items():
            assert [seq for (_, _, seq, _) in log] == \
                list(range(COUNT * NODES)), f"node {nid} seq gap"


class TestTicketContract:
    def test_propose_returns_dense_per_sender_tickets(self, backend):
        """The k-th successful propose returns ticket k, and the k-th
        delivery from that sender carries payload k — so tickets index
        directly into the delivered FIFO (the KV store's reply-matching
        relies on exactly this, repro.apps.kvstore)."""
        cluster, logs = build(backend)
        tickets = {nid: [] for nid in cluster.node_ids}

        def recording_sender(nid):
            mc = cluster.mc(nid, 0)
            for k in range(COUNT):
                ticket = yield from mc.propose(SIZE, f"{nid}:{k}".encode())
                tickets[nid].append(ticket)
            mc.mark_finished()

        for nid in cluster.node_ids:
            cluster.spawn_sender(recording_sender(nid))
        drive_to_completion(cluster, {0: COUNT * NODES * NODES},
                            max_time=1.0)
        for nid in cluster.node_ids:
            assert tickets[nid] == list(range(COUNT))
            rank = cluster.mc(nid, 0).my_rank
            fifo = [p for (_, r, _, p) in logs[0] if r == rank]
            for ticket in tickets[nid]:
                assert fifo[ticket] == f"{nid}:{ticket}".encode()


class TestWedgeThenSettle:
    def test_wedge_rejects_settles_and_stays_prefix_consistent(
            self, backend):
        cluster, logs = build(backend)
        for nid in cluster.node_ids:
            cluster.spawn_sender(_tolerant_sender(cluster.mc(nid, 0), 500))
        cluster.run(until=ms(1))
        for nid in cluster.node_ids:
            cluster.mc(nid, 0).wedge()
        cluster.run(until=ms(6))
        cluster.stop()
        cluster.run(until=ms(7))
        for nid in cluster.node_ids:
            mc = cluster.mc(nid, 0)
            assert mc.wedged
            assert mc.congestion() == 1.0
            with pytest.raises(RuntimeError):
                # Exhaust the propose generator: the wedge must reject
                # it before any simulated-time yield resolves.
                for _ in mc.propose(SIZE, b"late"):
                    raise AssertionError("wedged propose yielded")
        ordered = sorted(logs.values(), key=len)
        for log in ordered:
            assert log == ordered[-1][:len(log)], "logs not prefix-consistent"


class TestStablePrefix:
    def test_monotonic_and_complete(self, backend):
        cluster, logs = build(backend)
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=COUNT, size=SIZE))
        total = COUNT * NODES
        observed = []

        def watch():
            while cluster.total_delivered(0) < total * NODES:
                observed.append(cluster.mc(0, 0).stable_prefix())
                yield ms(0.05)

        cluster.sim.spawn(watch(), name="stable-prefix-watch")
        drive_to_completion(cluster, {0: total * NODES}, max_time=1.0)
        observed.append(cluster.mc(0, 0).stable_prefix())
        assert observed == sorted(observed), "stable_prefix regressed"
        assert observed[-1] >= total - 1

    def test_congestion_bounded(self, backend):
        cluster, _ = build(backend)
        samples = []

        def sampling_sender(nid):
            mc = cluster.mc(nid, 0)
            for k in range(COUNT):
                yield from mc.propose(SIZE, None)
                samples.append(mc.congestion())
            mc.mark_finished()

        for nid in cluster.node_ids:
            cluster.spawn_sender(sampling_sender(nid))
        drive_to_completion(cluster, {0: COUNT * NODES * NODES},
                            max_time=1.0)
        assert samples
        assert all(0.0 <= c <= 1.0 for c in samples)


class TestDeterminism:
    def test_repeat_run_is_bitwise_identical(self, backend):
        """Randomness present (seeded jitter) yet fully reproducible."""
        _, logs_a, tracer_a = full_run(backend, seed=23, trace=True,
                                       jitter=True)
        _, logs_b, tracer_b = full_run(backend, seed=23, trace=True,
                                       jitter=True)
        assert logs_a == logs_b
        assert tracer_a.fingerprint() == tracer_b.fingerprint()

    def test_seed_reaches_the_protocol(self, backend):
        """Different seeds must perturb a jittered run (sanity that the
        determinism test above is not vacuous)."""
        _, _, tracer_a = full_run(backend, seed=1, trace=True, jitter=True)
        _, _, tracer_b = full_run(backend, seed=2, trace=True, jitter=True)
        assert tracer_a.fingerprint() != tracer_b.fingerprint()


def _tolerant_sender(mc, count):
    """Streams until wedged; a wedge mid-run ends the sender quietly."""
    for k in range(count):
        try:
            yield from mc.propose(SIZE, f"w{mc.node_id}:{k}".encode())
        except RuntimeError:
            return

"""Tests for durable atomic multicast (persistent delivery mode)."""

import pytest

from repro.core.config import SpindleConfig
from repro.core.persistence import StorageModel
from repro.workloads import Cluster, continuous_sender


def build(n=3, count=25, size=1024, window=10, config=None):
    cluster = Cluster(n, config=config or SpindleConfig.optimized())
    cluster.add_subgroup(message_size=size, window=window, persistent=True)
    cluster.build()
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=size,
            payload_fn=lambda k, nid=nid: b"%d:%d" % (nid, k)))
    return cluster


class TestStorageModel:
    def test_append_time_scales(self):
        m = StorageModel()
        assert m.append_time(1024) < m.append_time(1024 * 1024)
        assert m.append_time(0) == m.append_time(0)  # base only

    def test_batching_amortizes_base(self):
        m = StorageModel()
        one_big = m.append_time(64 * 1024)
        many_small = 64 * m.append_time(1024)
        assert one_big < many_small


class TestDurability:
    def test_everything_becomes_durable_everywhere(self):
        cluster = build(n=3, count=25)
        cluster.run_to_quiescence(max_time=30.0)
        total = 3 * 25
        for nid in cluster.node_ids:
            engine = cluster.group(nid).persistence[0]
            assert len(engine.log) == total
            assert engine.durable_seq == cluster.mc(nid, 0).delivered_seq

    def test_durable_watermark_monotone_and_bounded(self):
        cluster = build(n=3, count=30)
        marks = []
        cluster.group(0).on_durable(0, marks.append)
        cluster.run_to_quiescence(max_time=30.0)
        assert marks == sorted(marks)
        assert marks[-1] == cluster.mc(0, 0).delivered_seq
        # Durability can never run ahead of delivery.
        engine = cluster.group(0).persistence[0]
        assert engine.persisted_seq <= cluster.mc(0, 0).delivered_seq

    def test_log_contents_identical_across_members(self):
        """The durable logs are replicas: same entries, same order
        (this is what makes it durable Paxos)."""
        cluster = build(n=4, count=20)
        cluster.run_to_quiescence(max_time=30.0)
        logs = [cluster.group(nid).persistence[0].replay()
                for nid in cluster.node_ids]
        assert all(log == logs[0] for log in logs)
        seqs = [seq for seq, _, _ in logs[0]]
        assert seqs == sorted(seqs)

    def test_log_payload_integrity(self):
        cluster = build(n=3, count=15)
        cluster.run_to_quiescence(max_time=30.0)
        log = cluster.group(1).persistence[0].replay()
        payloads = {p for _, _, p in log}
        expected = {b"%d:%d" % (nid, k) for nid in range(3) for k in range(15)}
        assert payloads == expected

    def test_durability_lags_delivery_in_time(self):
        """Durable notification happens strictly after local delivery
        (SSD append + persisted-ack round)."""
        cluster = Cluster(3, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=1024, window=10, persistent=True)
        cluster.build()
        delivered_at = {}
        durable_at = {}
        cluster.group(0).on_delivery(
            0, lambda d: delivered_at.setdefault(d.seq, cluster.sim.now))
        cluster.group(0).on_durable(
            0, lambda w: durable_at.setdefault(w, cluster.sim.now))
        cluster.spawn_sender(continuous_sender(
            cluster.mc(0, 0), count=10, size=1024))
        cluster.run_to_quiescence(max_time=30.0)
        final = max(delivered_at)
        assert durable_at[max(durable_at)] > delivered_at[final]

    def test_batched_appends_amortize(self):
        """Under load, the storage thread appends in batches."""
        cluster = build(n=3, count=60, window=20)
        cluster.run_to_quiescence(max_time=30.0)
        engine = cluster.group(0).persistence[0]
        assert engine.batches < len(engine.log)

    def test_persistence_costs_throughput(self):
        def thr(persistent):
            cluster = Cluster(4, config=SpindleConfig.optimized())
            cluster.add_subgroup(message_size=10240, window=50,
                                 persistent=persistent)
            cluster.build()
            for nid in cluster.node_ids:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(nid, 0), count=80, size=10240))
            cluster.run_to_quiescence(max_time=60.0)
            return cluster.aggregate_throughput(0)

        # The storage thread works off the critical path, so delivery
        # throughput holds up, but it cannot be *faster* than volatile.
        assert thr(True) <= thr(False) * 1.05

    def test_persistent_requires_atomic_mode(self):
        cluster = Cluster(3)
        with pytest.raises(ValueError, match="require atomic delivery"):
            cluster.add_subgroup(delivery_mode="unordered", persistent=True)

    def test_works_with_baseline_config_too(self):
        cluster = build(n=3, count=10, config=SpindleConfig.baseline())
        cluster.run_to_quiescence(max_time=30.0)
        for nid in cluster.node_ids:
            assert len(cluster.group(nid).persistence[0].log) == 30

    def test_durable_log_survives_view_change(self):
        """The log is on stable storage: an epoch restart must not lose
        it, and the next epoch's entries append after it."""
        from repro.workloads import continuous_sender as sender

        cluster = build(n=3, count=10)
        cluster.run_to_quiescence(max_time=30.0)
        epoch1 = cluster.group(0).persistence[0].replay()
        assert len(epoch1) == 30

        new_view = cluster.view.without([2])
        cluster.install_view(new_view)
        for nid in new_view.members:
            cluster.spawn_sender(sender(
                cluster.mc(nid, 0), count=5, size=1024,
                payload_fn=lambda k, nid=nid: b"e2-%d:%d" % (nid, k)))
        cluster.run_to_quiescence(max_time=30.0)
        log = cluster.group(0).persistence[0].replay()
        assert log[:30] == epoch1
        assert len(log) == 40
        assert all(p.startswith(b"e2-") for _, _, p in log[30:])

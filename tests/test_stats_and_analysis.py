"""Unit tests for the metrics (core.stats), analysis formatting, units,
and the experiment runner utilities."""

import pytest

from repro.analysis import figure_banner, format_table, gbps, ratio, usec
from repro.core.stats import SubgroupStats
from repro.sim.units import GB, KB, MB, gb_per_s, ms, ns, sec, to_ms, to_us, us
from repro.workloads.runner import ExperimentResult, sender_set


class TestUnits:
    def test_time_conversions(self):
        assert us(1) == 1e-6
        assert ns(1) == 1e-9
        assert ms(1) == 1e-3
        assert sec(2.5) == 2.5
        assert to_us(1e-6) == pytest.approx(1.0)
        assert to_ms(1e-3) == pytest.approx(1.0)

    def test_sizes(self):
        assert KB == 1024 and MB == 1024 ** 2 and GB == 1024 ** 3
        assert gb_per_s(12.5) == 12.5e9


class TestSubgroupStats:
    def test_delivery_counters(self):
        stats = SubgroupStats(curve_stride=2)
        stats.record_delivery(1.0, 0, 100, 0.5)
        stats.record_delivery(2.0, 1, 100, 1.0)
        stats.record_delivery(3.0, 0, 100, 2.9)
        assert stats.delivered == 3
        assert stats.bytes_delivered == 300
        assert stats.first_delivery_time == 1.0
        assert stats.last_delivery_time == 3.0
        assert stats.mean_latency == pytest.approx((0.5 + 1.0 + 0.1) / 3)
        assert stats.latency_max == pytest.approx(1.0)

    def test_throughput_steady_slope(self):
        stats = SubgroupStats(curve_stride=1)
        # 1 KB delivered every second: 1 KB/s.
        for t in range(1, 11):
            stats.record_delivery(float(t), 0, 1024, float(t) - 0.1)
        assert stats.throughput() == pytest.approx(1024.0, rel=0.05)

    def test_throughput_until_fraction_excludes_tail(self):
        stats = SubgroupStats(curve_stride=1)
        for t in range(1, 11):
            stats.record_delivery(float(t), 0, 1024, float(t))
        # A long trickle tail: one more message after 100 seconds.
        stats.record_delivery(110.0, 0, 1024, 109.0)
        fast = stats.throughput(until_fraction=0.85)
        slow = stats.throughput()
        assert fast > 5 * slow

    def test_throughput_degenerate_cases(self):
        stats = SubgroupStats()
        assert stats.throughput() == 0.0
        stats.record_delivery(1.0, 0, 100, 0.9)
        assert stats.throughput() == 0.0  # single instant, no span

    def test_interdelivery_per_sender(self):
        stats = SubgroupStats()
        stats.record_delivery(1.0, 0, 10, 0.0)
        stats.record_delivery(2.0, 1, 10, 0.0)
        stats.record_delivery(4.0, 0, 10, 0.0)
        assert stats.mean_interdelivery(0) == pytest.approx(3.0)
        assert stats.mean_interdelivery(1) == 0.0  # single delivery
        assert stats.mean_interdelivery(9) == 0.0  # never delivered

    def test_batch_histograms_and_means(self):
        stats = SubgroupStats()
        stats.record_send_batch(1)
        stats.record_send_batch(3)
        stats.record_receive_batch(10)
        stats.record_delivery_batch(20)
        stats.record_delivery_batch(40)
        send, receive, delivery = stats.mean_batches
        assert send == pytest.approx(2.0)
        assert receive == pytest.approx(10.0)
        assert delivery == pytest.approx(30.0)

    def test_latency_sample_cap(self):
        stats = SubgroupStats(latency_sample_cap=5)
        for t in range(10):
            stats.record_delivery(float(t + 1), 0, 1, float(t))
        assert len(stats.latency_samples) == 5
        assert stats.latency_count == 10


class TestAnalysisFormatting:
    def test_gbps_and_usec(self):
        assert gbps(9.7e9) == "9.70"
        assert usec(1.5e-6) == "1.5"
        assert usec(2e-3) == "2000"

    def test_ratio(self):
        assert ratio(10, 2) == "5.0x"
        assert ratio(1, 0) == "inf"

    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long", 1234]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "1234" in lines[3]

    def test_figure_banner_contains_claim(self):
        banner = figure_banner("Figure 9", "title", "the claim")
        assert "Figure 9" in banner and "the claim" in banner


class TestRunnerUtilities:
    def test_sender_set_patterns(self):
        assert sender_set(8, "all") == list(range(8))
        assert sender_set(8, "half") == [0, 1, 2, 3]
        assert sender_set(8, "one") == [0]
        assert sender_set(1, "half") == [0]  # at least one sender
        with pytest.raises(ValueError):
            sender_set(8, "some")

    def test_experiment_result_derived_metrics(self):
        result = ExperimentResult(
            throughput=5e9, latency=100e-6, delivered_per_node=1000,
            duration=0.01, rdma_writes=5000, post_time=0.5,
            busy_time=1.0, sender_wait_fraction=0.5,
            mean_batches=(1.0, 2.0, 3.0), nulls_sent=0,
        )
        assert result.throughput_gbps == pytest.approx(5.0)
        assert result.latency_us == pytest.approx(100.0)
        assert result.post_fraction == pytest.approx(0.5)
        assert result.message_rate == pytest.approx(100_000)

    def test_experiment_result_zero_guards(self):
        result = ExperimentResult(
            throughput=0, latency=0, delivered_per_node=0, duration=0,
            rdma_writes=0, post_time=0, busy_time=0,
            sender_wait_fraction=0, mean_batches=(0, 0, 0), nulls_sent=0,
        )
        assert result.post_fraction == 0.0
        assert result.message_rate == 0.0

"""Tests for the RDMC large-message multicast subsystem."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.rdma import RdmaFabric
from repro.rdmc import RdmcGroup, SCHEMES, build_schedule, sends_by_holder
from repro.sim import Simulator


def make_group(n, scheme, block_size=4096):
    sim = Simulator()
    fabric = RdmaFabric(sim)
    members = [fabric.add_node().node_id for _ in range(n)]
    group = RdmcGroup(fabric, members, block_size=block_size, scheme=scheme)
    return sim, fabric, members, group


class TestSchedules:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("n,blocks", [(2, 1), (3, 2), (8, 4), (13, 7)])
    def test_every_rank_gets_every_block(self, scheme, n, blocks):
        schedule = build_schedule(scheme, n, blocks)
        held = {0: set(range(blocks))}
        for rank in range(1, n):
            held[rank] = set()
        # Simulate dependency-respecting execution to a fixpoint.
        progress = True
        remaining = list(schedule)
        while progress:
            progress = False
            for step in list(remaining):
                if step.block in held[step.src]:
                    held[step.dst].add(step.block)
                    remaining.remove(step)
                    progress = True
        assert not remaining, "schedule has unsatisfiable dependencies"
        for rank in range(n):
            assert held[rank] == set(range(blocks))

    def test_binomial_send_count_is_minimal(self):
        # A whole-message binomial tree performs exactly n-1 transfers
        # per block.
        for n in (2, 5, 8, 16):
            schedule = build_schedule("binomial", n, 3)
            assert len(schedule) == 3 * (n - 1)

    def test_sequential_all_from_sender(self):
        schedule = build_schedule("sequential", 6, 2)
        assert all(s.src == 0 for s in schedule)

    def test_pipeline_staggers_rounds(self):
        schedule = build_schedule("binomial_pipeline", 8, 4)
        first_round = {
            b: min(s.round for s in schedule if s.block == b)
            for b in range(4)
        }
        assert first_round == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_single_node_schedule_empty(self):
        assert build_schedule("binomial", 1, 5) == []

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_schedule("magic", 4, 2)

    def test_sends_by_holder_round_ordered(self):
        index = sends_by_holder(build_schedule("binomial_pipeline", 8, 4))
        for sends in index.values():
            rounds = [s.round for s in sends]
            assert rounds == sorted(rounds)


class TestSessions:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_payload_delivered_intact(self, scheme):
        sim, fabric, members, group = make_group(5, scheme, block_size=1024)
        payload = bytes(range(256)) * 14  # 3.5 KB -> 4 blocks
        delivered = []
        session = group.multicast(members[2], len(payload), payload,
                                  on_delivered=delivered.append)
        sim.run()
        assert session.complete
        assert sorted(delivered) == [m for m in members if m != members[2]]
        for m in members:
            assert session.payload_at(m) == payload

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_size_only_mode(self, scheme):
        sim, fabric, members, group = make_group(4, scheme, block_size=64 * 1024)
        session = group.multicast(members[0], 1_000_000)
        sim.run()
        assert session.complete
        assert session.num_blocks == math.ceil(1_000_000 / (64 * 1024))

    def test_binomial_beats_sequential_for_large_groups(self):
        """The Fig. 4 remark: relay schedules win at larger groups."""
        def completion(scheme, n):
            sim, fabric, members, group = make_group(n, scheme,
                                                     block_size=1 << 20)
            session = group.multicast(members[0], 8 << 20)  # 8 MB
            sim.run()
            return max(session.completion_time(m) for m in members)

        for n in (8, 16):
            assert completion("binomial", n) < completion("sequential", n)

    def test_pipeline_beats_plain_binomial_with_many_blocks(self):
        def completion(scheme):
            sim, fabric, members, group = make_group(16, scheme,
                                                     block_size=256 * 1024)
            session = group.multicast(members[0], 32 << 20)  # 128 blocks
            sim.run()
            return max(session.completion_time(m) for m in members)

        assert completion("binomial_pipeline") < completion("binomial")

    def test_sequential_scales_linearly_with_members(self):
        def completion(n):
            sim, fabric, members, group = make_group(n, "sequential",
                                                     block_size=1 << 20)
            session = group.multicast(members[0], 4 << 20)
            sim.run()
            return max(session.completion_time(m) for m in members)

        t4, t8 = completion(4), completion(8)
        assert t8 / t4 == pytest.approx((8 - 1) / (4 - 1), rel=0.15)

    def test_binomial_scales_logarithmically(self):
        def completion(n):
            sim, fabric, members, group = make_group(n, "binomial",
                                                     block_size=1 << 20)
            session = group.multicast(members[0], 4 << 20)
            sim.run()
            return max(session.completion_time(m) for m in members)

        t4, t16 = completion(4), completion(16)
        assert t16 / t4 == pytest.approx(2.0, rel=0.3)  # log2(16)/log2(4)

    def test_concurrent_sessions_do_not_interfere(self):
        sim, fabric, members, group = make_group(4, "binomial_pipeline",
                                                 block_size=512)
        p1 = b"a" * 2048
        p2 = b"b" * 1536
        s1 = group.multicast(members[0], len(p1), p1)
        s2 = group.multicast(members[1], len(p2), p2)
        sim.run()
        assert s1.complete and s2.complete
        assert s1.payload_at(members[3]) == p1
        assert s2.payload_at(members[3]) == p2

    def test_release_deregisters_regions(self):
        sim, fabric, members, group = make_group(3, "binomial", block_size=512)
        session = group.multicast(members[0], 1024, b"x" * 1024)
        sim.run()
        before = sum(len(fabric.nodes[m].regions) for m in members)
        session.release()
        after = sum(len(fabric.nodes[m].regions) for m in members)
        assert before - after == 3

    def test_validation(self):
        sim, fabric, members, group = make_group(3, "binomial")
        with pytest.raises(ValueError, match="not a group member"):
            group.multicast(999, 100)
        with pytest.raises(ValueError, match="size must be positive"):
            group.multicast(members[0], 0)
        with pytest.raises(ValueError, match="length must equal"):
            group.multicast(members[0], 10, b"short")
        with pytest.raises(ValueError):
            RdmcGroup(fabric, [members[0]])
        with pytest.raises(ValueError):
            RdmcGroup(fabric, members, block_size=0)
        with pytest.raises(ValueError):
            RdmcGroup(fabric, members, scheme="bogus")


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(2, 10),
    blocks=st.integers(1, 12),
    scheme=st.sampled_from(SCHEMES),
    sender_idx=st.integers(0, 9),
)
def test_property_full_delivery(n, blocks, scheme, sender_idx):
    """Property: any group size / block count / sender completes and
    every member ends with the full message."""
    block_size = 512
    sim, fabric, members, group = make_group(n, scheme, block_size)
    sender = members[sender_idx % n]
    payload = bytes((i * 7) % 256 for i in range(blocks * block_size - 13))
    session = group.multicast(sender, len(payload), payload)
    sim.run()
    assert session.complete
    for m in members:
        assert session.payload_at(m) == payload

"""Property-based chaos: protocol invariants hold for *randomized* fault
schedules, not just the curated scenario catalog.

Three families (ISSUE satellite):

* null-send quiescence — under random jitter windows and thread stalls,
  a workload where only a random subset of nodes sends still drains to
  quiescence (§3.3: null-sends must terminate, not chatter forever);
* partition-then-heal convergence — any transient partition healing
  inside the confirmation grace leaves every node in the same (original)
  view with identical delivery logs;
* leader crash mid-view-change — crashing the leader while a view
  change is in progress still yields one consistent successor view at
  every survivor.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import SpindleConfig
from repro.sim.units import ms, us
from repro.workloads import Cluster, continuous_sender


def build_cluster(n, seed=0, membership=None, window=8, size=256):
    cluster = Cluster(n, config=SpindleConfig.optimized(), seed=seed)
    cluster.add_subgroup(message_size=size, window=window)
    if membership:
        cluster.enable_membership(**membership)
    cluster.build()
    logs = {nid: [] for nid in cluster.node_ids}
    views = {nid: [] for nid in cluster.node_ids}
    for nid in cluster.node_ids:
        cluster.group(nid).on_delivery(
            0, lambda d, nid=nid: logs[nid].append((d.seq, d.sender)))
        if membership:
            cluster.group(nid).membership.on_new_view.append(
                lambda v, nid=nid: views[nid].append(v))
    return cluster, logs, views


@settings(max_examples=14, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(3, 5),
    sender_mask=st.integers(0, 31),
    count=st.integers(20, 80),
    extra_us=st.floats(0.0, 5.0),
    jitter_us=st.floats(0.0, 8.0),
    stall_at_us=st.integers(50, 1500),
    stall_dur_us=st.integers(100, 600),
    stall_node_idx=st.integers(0, 4),
    seed=st.integers(0, 1000),
)
def test_quiescence_under_jitter_and_stalls(n, sender_mask, count, extra_us,
                                            jitter_us, stall_at_us,
                                            stall_dur_us, stall_node_idx,
                                            seed):
    """Null-send quiescence: whatever subset of nodes sends, and however
    the links jitter and threads stall, the run drains (no perpetual
    null chatter) and the senders' messages are delivered identically
    everywhere."""
    cluster, logs, _ = build_cluster(n, seed=seed)
    senders = [nid for i, nid in enumerate(cluster.node_ids)
               if sender_mask & (1 << i)]
    for nid in senders:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=256))
    if extra_us or jitter_us:
        cluster.faults.jitter(until=ms(30), extra_latency=us(extra_us),
                              jitter=us(jitter_us), at=0.0)
    cluster.faults.stall(stall_node_idx % n, duration=us(stall_dur_us),
                         at=us(stall_at_us))
    # The invariant: the run reaches quiescence (raises otherwise) ...
    cluster.run_to_quiescence(max_time=4.0)
    # ... with nothing lost and nothing reordered.
    expected = count * len(senders)
    assert all(len(log) == expected for log in logs.values())
    reference = logs[cluster.node_ids[0]]
    assert all(log == reference for log in logs.values())
    assert cluster.fabric.total_writes_dropped() == 0


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    split_mask=st.integers(1, 6),   # non-trivial bipartition of 4 nodes
    cut_at_us=st.integers(100, 2000),
    cut_len_us=st.integers(200, 900),
    count=st.integers(20, 70),
    seed=st.integers(0, 1000),
)
def test_partition_heal_converges_to_same_view(split_mask, cut_at_us,
                                               cut_len_us, count, seed):
    """A transient partition healing inside the confirmation grace never
    tears the view: every node stays in view 0, local suspicions are
    rescinded, and all delivery logs end identical."""
    cluster, logs, views = build_cluster(
        4, seed=seed,
        membership=dict(heartbeat_period=us(100), suspicion_timeout=us(500),
                        confirmation_grace=us(600)))
    side_a = [nid for i, nid in enumerate(cluster.node_ids)
              if split_mask & (1 << i)]
    side_b = [nid for nid in cluster.node_ids if nid not in side_a]
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=256))
    cluster.faults.partition([side_a, side_b], at=us(cut_at_us),
                             heal_at=us(cut_at_us + cut_len_us),
                             mode="buffer")
    cluster.run(until=ms(80))

    # Same view everywhere: nobody reconfigured, nobody is suspected.
    assert all(not v for v in views.values())
    for nid in cluster.node_ids:
        svc = cluster.group(nid).membership
        assert not svc.suspected_members()
        assert not svc.wedged
    # Identical delivery logs, nothing missing.
    expected = count * 4
    assert all(len(log) == expected for log in logs.values())
    reference = logs[cluster.node_ids[0]]
    assert all(log == reference for log in logs.values())


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    victim_idx=st.integers(1, 4),
    crash_at_us=st.integers(300, 1500),
    leader_delta_us=st.integers(0, 800),
    count=st.integers(40, 150),
    seed=st.integers(0, 1000),
)
def test_leader_crash_mid_view_change_consistent_view(victim_idx,
                                                      crash_at_us,
                                                      leader_delta_us,
                                                      count, seed):
    """Crash a member, then crash the *leader* while the resulting view
    change is still in its detection/wedging phase: the next live member
    takes over the reconfiguration and every survivor installs the same
    successor view with identical delivery logs.

    Five nodes, two crashes: the three survivors keep the strict
    majority the quorum gate demands (with four nodes the protocol
    would — correctly — stall at two-of-four)."""
    n = 5
    victim = 1 + (victim_idx % (n - 1))  # never the leader (node 0)
    cluster, logs, views = build_cluster(
        n, seed=seed, window=6,
        membership=dict(heartbeat_period=us(100),
                        suspicion_timeout=us(500)))
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=256))
    cluster.faults.crash(victim, at=us(crash_at_us))
    # The leader dies inside the suspicion window (timeout + grace =
    # 1 ms), i.e. before any proposal for the first crash can exist.
    cluster.faults.crash(0, at=us(crash_at_us + leader_delta_us))
    cluster.run(until=ms(150))

    survivors = [nid for nid in cluster.node_ids if nid not in (0, victim)]
    final = [views[nid][-1] for nid in survivors if views[nid]]
    assert len(final) == len(survivors), "a survivor missed the view change"
    assert all(v.members == final[0].members for v in final)
    assert 0 not in final[0].members and victim not in final[0].members
    assert final[0].leader == min(survivors)
    reference = logs[survivors[0]]
    assert all(logs[nid] == reference for nid in survivors)

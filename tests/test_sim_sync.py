"""Unit tests for simulated synchronization primitives."""

import pytest

from repro.sim import Doorbell, Event, Lock, Simulator


def test_event_triggers_once():
    sim = Simulator()
    event = Event(sim)
    event.trigger(1)
    with pytest.raises(RuntimeError):
        event.trigger(2)


def test_event_wakes_all_waiters():
    sim = Simulator()
    event = Event(sim)
    got = []

    def waiter(i):
        value = yield event
        got.append((i, value))

    for i in range(3):
        sim.spawn(waiter(i))
    sim.call_after(1.0, event.trigger, "v")
    sim.run()
    assert sorted(got) == [(0, "v"), (1, "v"), (2, "v")]


class TestDoorbell:
    def test_ring_wakes_waiter(self):
        sim = Simulator()
        bell = Doorbell(sim)
        woke = []

        def poller():
            yield bell.wait()
            woke.append(sim.now)

        sim.spawn(poller())
        sim.call_after(2.0, bell.ring)
        sim.run()
        assert woke == [2.0]

    def test_pending_ring_not_lost(self):
        """A ring that arrives before wait() must not be missed."""
        sim = Simulator()
        bell = Doorbell(sim)
        woke = []

        def poller():
            yield 5.0  # busy working while the ring arrives
            yield bell.wait()
            woke.append(sim.now)

        sim.spawn(poller())
        sim.call_after(1.0, bell.ring)
        sim.run()
        assert woke == [5.0]

    def test_multiple_rings_collapse_to_one_pending(self):
        sim = Simulator()
        bell = Doorbell(sim)
        woke = []

        def poller():
            yield 5.0
            yield bell.wait()
            woke.append(sim.now)
            yield bell.wait()  # no further ring: blocks forever
            woke.append(sim.now)

        sim.spawn(poller())
        sim.call_after(1.0, bell.ring)
        sim.call_after(2.0, bell.ring)
        sim.run()
        assert woke == [5.0]
        assert bell.rings == 2

    def test_ring_wakes_all_current_waiters(self):
        sim = Simulator()
        bell = Doorbell(sim)
        woke = []

        def poller(i):
            yield bell.wait()
            woke.append(i)

        for i in range(3):
            sim.spawn(poller(i))
        sim.call_after(1.0, bell.ring)
        sim.run()
        assert sorted(woke) == [0, 1, 2]

    def test_waiting_count(self):
        sim = Simulator()
        bell = Doorbell(sim)

        def poller():
            yield bell.wait()

        sim.spawn(poller())
        sim.run(until=0.1)
        assert bell.waiting == 1
        bell.ring()
        sim.run(until=0.2)
        assert bell.waiting == 0


class TestLock:
    def test_mutual_exclusion_and_fifo(self):
        sim = Simulator()
        lock = Lock(sim)
        trace = []

        def worker(i):
            yield lock.acquire()
            trace.append(("in", i, sim.now))
            yield 1.0
            trace.append(("out", i, sim.now))
            lock.release()

        for i in range(3):
            sim.spawn(worker(i))
        sim.run()
        # Critical sections are strictly serialized in FIFO order.
        assert trace == [
            ("in", 0, 0.0), ("out", 0, 1.0),
            ("in", 1, 1.0), ("out", 1, 2.0),
            ("in", 2, 2.0), ("out", 2, 3.0),
        ]

    def test_release_without_hold_raises(self):
        sim = Simulator()
        lock = Lock(sim)
        with pytest.raises(RuntimeError):
            lock.release()

    def test_uncontended_acquire_is_immediate(self):
        sim = Simulator()
        lock = Lock(sim)
        times = []

        def worker():
            yield lock.acquire()
            times.append(sim.now)
            lock.release()

        sim.spawn(worker())
        sim.run()
        assert times == [0.0]
        assert lock.contended_acquires == 0

    def test_contention_statistics(self):
        sim = Simulator()
        lock = Lock(sim)

        def holder():
            yield lock.acquire()
            yield 2.0
            lock.release()

        def waiter():
            yield 0.5
            yield lock.acquire()
            lock.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert lock.acquires == 2
        assert lock.contended_acquires == 1
        assert lock.wait_time == pytest.approx(1.5)


class TestEventErrorPaths:
    def test_double_trigger_names_the_event(self):
        sim = Simulator()
        event = Event(sim, name="commit")
        event.trigger("a")
        with pytest.raises(RuntimeError, match="commit"):
            event.trigger("b")

    def test_late_waiter_gets_value_via_queue_not_synchronously(self):
        """add_waiter after the trigger must still go through the event
        queue (never a synchronous callback from inside add_waiter)."""
        sim = Simulator()
        event = Event(sim)
        event.trigger(7)
        got = []
        event.add_waiter(got.append)
        assert got == []        # nothing synchronous happened
        sim.run()
        assert got == [7]

    def test_same_time_triggers_wake_fifo(self):
        """Two events triggered at the same instant resume their waiters
        in trigger order (scheduling order breaks the time tie)."""
        sim = Simulator()
        first, second = Event(sim, "e1"), Event(sim, "e2")
        order = []

        def waiter(tag, event):
            yield event
            order.append(tag)

        # Register in the opposite order to the trigger order: the
        # *trigger* order must win, proving FIFO queue semantics.
        sim.spawn(waiter("B", second))
        sim.spawn(waiter("A", first))
        sim.call_after(1.0, first.trigger, None)
        sim.call_after(1.0, second.trigger, None)
        sim.run()
        assert order == ["A", "B"]


class TestDoorbellErrorPaths:
    def test_same_time_rings_wake_waiters_in_fifo_order(self):
        sim = Simulator()
        bell = Doorbell(sim)
        order = []

        def poller(i):
            yield bell.wait()
            order.append(i)

        for i in range(4):
            sim.spawn(poller(i))
        sim.call_after(1.0, bell.ring)
        sim.run()
        assert order == [0, 1, 2, 3]

    def test_ring_from_inside_a_waiter_is_safe(self):
        """A waiter that re-rings during its wakeup must not corrupt the
        waiter list (wakeups go through the queue, never reentrantly)."""
        sim = Simulator()
        bell = Doorbell(sim)
        woke = []

        def chain(i):
            yield bell.wait()
            woke.append(i)
            if i == 0:
                bell.ring()  # wake the next generation

        sim.spawn(chain(0))
        sim.call_after(0.5, sim.spawn, chain(1))
        sim.call_after(1.0, bell.ring)
        sim.run()
        assert woke == [0, 1]


class TestLockOwnership:
    def test_held_by_tracks_the_owning_process(self):
        sim = Simulator()
        lock = Lock(sim, name="shared")
        observed = []

        def worker():
            yield lock.acquire()
            observed.append(lock.held_by)
            yield 1.0
            lock.release()
            observed.append(lock.held_by)

        proc = sim.spawn(worker(), name="owner-proc")
        sim.run()
        assert observed == [proc, None]
        assert lock.held_since is None

    def test_ownership_transfers_fifo_on_release(self):
        sim = Simulator()
        lock = Lock(sim)
        holders = []

        def worker():
            yield lock.acquire()
            holders.append(lock.held_by)
            yield 1.0
            lock.release()

        procs = [sim.spawn(worker(), name=f"w{i}") for i in range(3)]
        sim.run()
        assert holders == procs

    def test_release_unheld_reports_claimant_and_last_holder(self):
        sim = Simulator()
        lock = Lock(sim, name="shared")

        def worker():
            yield lock.acquire()
            lock.release()

        sim.spawn(worker(), name="legit")
        sim.run()
        with pytest.raises(RuntimeError) as exc:
            lock.release()
        message = str(exc.value)
        assert "not held" in message
        assert "legit" in message          # last holder context
        assert "<unknown>" in message      # claimant: not a process

    def test_release_by_non_owner_raises_with_both_parties(self):
        sim = Simulator()
        lock = Lock(sim, name="shared")
        failures = []

        def holder():
            yield lock.acquire()
            yield 5.0
            lock.release()

        def thief():
            yield 1.0
            try:
                lock.release()
            except RuntimeError as exc:
                failures.append(str(exc))

        sim.spawn(holder(), name="owner-proc")
        sim.spawn(thief(), name="thief-proc")
        sim.run()
        (message,) = failures
        assert "non-owner" in message
        assert "owner-proc" in message and "thief-proc" in message
        assert not lock.locked  # owner's release still went through

    def test_explicit_owner_token_supported(self):
        sim = Simulator()
        lock = Lock(sim, name="shared")
        token = object()
        lock.acquire(owner=token)  # uncontended: grants immediately
        assert lock.held_by is token
        with pytest.raises(RuntimeError, match="non-owner"):
            lock.release(owner=object())
        lock.release(owner=token)
        assert not lock.locked

    def test_wait_time_stays_consistent_when_waiter_cancelled(self):
        """The §3.4 accounting edge: a queued waiter whose event fires
        out of band (error path) must be skipped on hand-off without
        corrupting wait-time accounting or the FIFO queue."""
        sim = Simulator()
        lock = Lock(sim)
        order = []

        def holder():
            yield lock.acquire()
            yield 2.0
            lock.release()

        def doomed():
            yield 0.5
            event = lock.acquire()  # queued behind holder...
            event.trigger("aborted")  # ...then dies out of band
            yield event

        def patient():
            yield 1.0
            yield lock.acquire()
            order.append(sim.now)
            lock.release()

        sim.spawn(holder(), name="holder")
        sim.spawn(doomed(), name="doomed")
        sim.spawn(patient(), name="patient")
        sim.run()
        # The stale waiter was skipped: 'patient' got the lock at t=2,
        # and only its wait (2.0 - 1.0) was accounted.
        assert order == [2.0]
        assert lock.wait_time == pytest.approx(1.0)
        assert not lock.locked and lock.held_by is None

"""Unit tests for simulated synchronization primitives."""

import pytest

from repro.sim import Doorbell, Event, Lock, Simulator


def test_event_triggers_once():
    sim = Simulator()
    event = Event(sim)
    event.trigger(1)
    with pytest.raises(RuntimeError):
        event.trigger(2)


def test_event_wakes_all_waiters():
    sim = Simulator()
    event = Event(sim)
    got = []

    def waiter(i):
        value = yield event
        got.append((i, value))

    for i in range(3):
        sim.spawn(waiter(i))
    sim.call_after(1.0, event.trigger, "v")
    sim.run()
    assert sorted(got) == [(0, "v"), (1, "v"), (2, "v")]


class TestDoorbell:
    def test_ring_wakes_waiter(self):
        sim = Simulator()
        bell = Doorbell(sim)
        woke = []

        def poller():
            yield bell.wait()
            woke.append(sim.now)

        sim.spawn(poller())
        sim.call_after(2.0, bell.ring)
        sim.run()
        assert woke == [2.0]

    def test_pending_ring_not_lost(self):
        """A ring that arrives before wait() must not be missed."""
        sim = Simulator()
        bell = Doorbell(sim)
        woke = []

        def poller():
            yield 5.0  # busy working while the ring arrives
            yield bell.wait()
            woke.append(sim.now)

        sim.spawn(poller())
        sim.call_after(1.0, bell.ring)
        sim.run()
        assert woke == [5.0]

    def test_multiple_rings_collapse_to_one_pending(self):
        sim = Simulator()
        bell = Doorbell(sim)
        woke = []

        def poller():
            yield 5.0
            yield bell.wait()
            woke.append(sim.now)
            yield bell.wait()  # no further ring: blocks forever
            woke.append(sim.now)

        sim.spawn(poller())
        sim.call_after(1.0, bell.ring)
        sim.call_after(2.0, bell.ring)
        sim.run()
        assert woke == [5.0]
        assert bell.rings == 2

    def test_ring_wakes_all_current_waiters(self):
        sim = Simulator()
        bell = Doorbell(sim)
        woke = []

        def poller(i):
            yield bell.wait()
            woke.append(i)

        for i in range(3):
            sim.spawn(poller(i))
        sim.call_after(1.0, bell.ring)
        sim.run()
        assert sorted(woke) == [0, 1, 2]

    def test_waiting_count(self):
        sim = Simulator()
        bell = Doorbell(sim)

        def poller():
            yield bell.wait()

        sim.spawn(poller())
        sim.run(until=0.1)
        assert bell.waiting == 1
        bell.ring()
        sim.run(until=0.2)
        assert bell.waiting == 0


class TestLock:
    def test_mutual_exclusion_and_fifo(self):
        sim = Simulator()
        lock = Lock(sim)
        trace = []

        def worker(i):
            yield lock.acquire()
            trace.append(("in", i, sim.now))
            yield 1.0
            trace.append(("out", i, sim.now))
            lock.release()

        for i in range(3):
            sim.spawn(worker(i))
        sim.run()
        # Critical sections are strictly serialized in FIFO order.
        assert trace == [
            ("in", 0, 0.0), ("out", 0, 1.0),
            ("in", 1, 1.0), ("out", 1, 2.0),
            ("in", 2, 2.0), ("out", 2, 3.0),
        ]

    def test_release_without_hold_raises(self):
        sim = Simulator()
        lock = Lock(sim)
        with pytest.raises(RuntimeError):
            lock.release()

    def test_uncontended_acquire_is_immediate(self):
        sim = Simulator()
        lock = Lock(sim)
        times = []

        def worker():
            yield lock.acquire()
            times.append(sim.now)
            lock.release()

        sim.spawn(worker())
        sim.run()
        assert times == [0.0]
        assert lock.contended_acquires == 0

    def test_contention_statistics(self):
        sim = Simulator()
        lock = Lock(sim)

        def holder():
            yield lock.acquire()
            yield 2.0
            lock.release()

        def waiter():
            yield 0.5
            yield lock.acquire()
            lock.release()

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert lock.acquires == 2
        assert lock.contended_acquires == 1
        assert lock.wait_time == pytest.approx(1.5)

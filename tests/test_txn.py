"""Transaction-plane tests (docs/TRANSACTIONS.md).

Covers the cross-shard coordinator end to end: CC x ordering-backend
conformance, the single-shard fast path, replica-side dedup by
(txn_id, shard) slot, the reserved settle lane, wound-wait age
retention, WAL recovery, and a hypothesis sweep checking strict
serializability of randomized histories under fabric jitter.
"""

from random import Random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.linearize import (
    TxnHistoryRecorder,
    check_txn_recorder,
    txn_selftest,
)
from repro.core.config import SpindleConfig
from repro.shard.router import RouterConfig
from repro.sim import Simulator
from repro.sim.units import ms, us
from repro.txn import (
    LockTable,
    TxnAborted,
    TxnConfig,
    TxnHandle,
    TxnOp,
    recover_txns,
)
from repro.txn.records import (
    W_PUT,
    WAL_BEGIN,
    WAL_DECISION,
    PrepareRecord,
    SettleRecord,
    encode_prepare,
    encode_settle,
    encode_wal,
)
from repro.workloads import Cluster


def build(num_nodes=5, num_shards=4, num_subgroups=2, seed=3, cc="occ",
          backend=None, txn_config=None, router_config=None, window=8):
    cluster = Cluster(num_nodes, config=SpindleConfig.optimized(),
                      seed=seed, backend=backend)
    cluster.add_shards(num_shards=num_shards, replication=2,
                       num_subgroups=num_subgroups, window=window,
                       message_size=256)
    cluster.build()
    router = cluster.router(router_config)
    plane = cluster.txn(txn_config if txn_config is not None
                        else TxnConfig(cc=cc))
    return cluster, router, plane


def observed_reads(ops, read_values):
    """Externally-observed reads of a committed txn: pair get ops with
    their returned values, skipping reads served from the txn's own
    write buffer (those observe no pre-state). First read wins, to
    match the repeatable-read contract."""
    out = {}
    values = iter(read_values)
    written = set()
    for op in ops:
        if op.op == "get":
            value = next(values)
            if op.key not in written:
                out.setdefault(op.key, value)
        else:
            written.add(op.key)
    return out


def keys_in_shards(router, count, same_subgroup=None):
    """First ``count`` probe keys in distinct shards; optionally all
    hosted by the same / different subgroups."""
    found = {}
    for i in range(10000):
        key = b"probe.%d" % i
        shard = router.map.shard_of(key)
        if shard in found:
            continue
        found[shard] = key
        if same_subgroup is not None:
            sgs = {router.map.subgroup_of(s) for s in found}
            if same_subgroup and len(sgs) > 1:
                found.pop(shard)
                continue
            if not same_subgroup and len(sgs) < len(found):
                found.pop(shard)
                continue
        if len(found) == count:
            return [found[s] for s in sorted(found)]
    raise AssertionError("could not find suitable probe keys")


# --------------------------------------------------------------- conformance


@pytest.mark.parametrize("backend", [None, "paxos"])
@pytest.mark.parametrize("cc", ["occ", "2pl"])
def test_cc_conformance_across_backends(cc, backend):
    """Both CC protocols pass the same mixed workload under both
    ordering backends: everything commits or aborts cleanly, committed
    history is strictly serializable, replicas converge."""
    cluster, router, plane = build(cc=cc, backend=backend, seed=5)
    recorder = TxnHistoryRecorder()
    outcomes = []

    def client(c):
        rng = Random(40 + c)
        for i in range(6):
            ops = []
            for _ in range(3):
                key = b"c%d" % rng.randrange(12)
                if rng.random() < 0.5:
                    ops.append(TxnOp("get", key))
                else:
                    ops.append(TxnOp("put", key, b"v%d.%d" % (c, i)))
            txn_ref = recorder.invoke(c, cluster.sim.now)
            recorder.pending_writes(txn_ref, {
                op.key: op.value for op in ops if op.op == "put"})
            out = yield from plane.run_txn(ops, coordinator_node=4)
            outcomes.append(out)
            if out.status == "committed":
                recorder.complete(
                    txn_ref, cluster.sim.now,
                    reads=observed_reads(ops, out.reads),
                    writes={op.key: op.value for op in ops
                            if op.op == "put"})
            else:
                recorder.drop(txn_ref)
            yield us(3.0)

    for c in range(3):
        cluster.spawn_sender(client(c), name=f"cl{c}")
    # Paxos keeps heartbeat timers pending forever, so run a bounded
    # window instead of waiting for quiescence.
    cluster.sim.run(until=0.1)

    assert len(outcomes) == 18
    assert sum(1 for o in outcomes if o.status == "committed") >= 15
    # Final-state read: every committed write must be accounted for.
    state = {}
    for i in range(12):
        key = b"c%d" % i
        sg = router.map.subgroup_of_key(key)
        value = router.service.gateway_replica(sg).read(key)
        if value is not None:
            state[key] = value
    recorder.record_state_read(99, state, cluster.sim.now)
    report = check_txn_recorder(recorder)
    assert report.ok, report.violations
    assert router.verifier.check()
    for replica in router.service.replicas.values():
        assert not replica.txn_prepared
        assert not replica.txn_locks


# ----------------------------------------------------------------- fast path


def test_single_shard_fastpath_skips_wal_and_settle():
    cluster, router, plane = build()
    done = []

    def run():
        out = yield from plane.run_txn(
            [TxnOp("put", b"solo", b"v1"), TxnOp("get", b"solo")])
        done.append(out)

    cluster.spawn_sender(run())
    cluster.run_to_quiescence(max_time=1.0)
    out = done[0]
    assert out.status == "committed" and out.fastpath
    assert out.reads == [b"v1"]  # read-your-writes from the buffer
    c = plane.counters
    assert c.fastpath_commits == 1
    assert c.prepares_sent == 1
    assert c.settles_sent == 0
    assert c.wal_records == 0


def test_fastpath_disabled_by_config_still_commits():
    cluster, router, plane = build(txn_config=TxnConfig(fastpath=False))
    done = []

    def run():
        out = yield from plane.run_txn([TxnOp("put", b"solo", b"v1")])
        done.append(out)

    cluster.spawn_sender(run())
    cluster.run_to_quiescence(max_time=1.0)
    assert done[0].status == "committed" and not done[0].fastpath
    assert plane.counters.settles_sent == 1
    assert plane.counters.wal_records == 3  # BEGIN, DECISION, END


def test_pure_read_occ_txn_needs_no_wal():
    """A multi-shard read-only OCC txn certifies through validate-only
    slices: no WAL, no settle, one batched slice per read subgroup."""
    cluster, router, plane = build()
    key_a, key_b = keys_in_shards(router, 2, same_subgroup=False)
    done = []

    def run():
        out = yield from router.request("put", key_a, b"va")
        assert out.status == "ok"
        out = yield from router.request("put", key_b, b"vb")
        assert out.status == "ok"
        out = yield from plane.run_txn(
            [TxnOp("get", key_a), TxnOp("get", key_b)])
        done.append(out)

    cluster.spawn_sender(run())
    cluster.run_to_quiescence(max_time=1.0)
    assert done[0].status == "committed"
    assert done[0].reads == [b"va", b"vb"]
    assert plane.counters.wal_records == 0
    assert plane.counters.settles_sent == 0
    assert plane.counters.prepares_sent == 2  # one per read subgroup


# ------------------------------------------------- replica slots and dedup


def test_same_subgroup_two_shard_txn_applies_both_slices():
    """Regression: replica txn state is keyed by (txn_id, shard). One
    replica hosting two participant shards of the same txn must buffer
    and apply *both* per-shard prepare slices — txn-id-only dedup
    silently dropped the second slice's writes."""
    cluster, router, plane = build(cc="occ")
    key_a, key_b = keys_in_shards(router, 2, same_subgroup=True)
    assert router.map.shard_of(key_a) != router.map.shard_of(key_b)
    assert (router.map.subgroup_of_key(key_a)
            == router.map.subgroup_of_key(key_b))
    done = []

    def run():
        out = yield from plane.run_txn(
            [TxnOp("put", key_a, b"A"), TxnOp("put", key_b, b"B")])
        done.append(out)

    cluster.spawn_sender(run())
    cluster.run_to_quiescence(max_time=1.0)
    assert done[0].status == "committed"
    sg = router.map.subgroup_of_key(key_a)
    replica = router.service.gateway_replica(sg)
    assert replica.read(key_a) == b"A"
    assert replica.read(key_b) == b"B"
    assert not replica.txn_prepared


def test_duplicate_txn_req_returns_original_verdict():
    cluster, router, plane = build()
    key = keys_in_shards(router, 1)[0]
    shard = router.map.shard_of(key)
    rec = PrepareRecord(txn_id=501, shard=shard, cc="occ",
                        auto_commit=True, reads=(),
                        writes=((W_PUT, key, b"once"),))
    verdicts = []

    def run():
        for _ in range(2):
            out = yield from router.request(
                "txn_prepare", b"", value=encode_prepare(rec), shard=shard)
            verdicts.append(out.value)

    cluster.spawn_sender(run())
    cluster.run_to_quiescence(max_time=1.0)
    assert verdicts == ["yes", "yes"]  # replay answers with the original
    sg = router.map.subgroup_of(shard)
    replica = router.service.gateway_replica(sg)
    assert replica.txn_duplicates >= 1
    assert replica.read(key) == b"once"


def test_validate_slice_blocked_by_prepared_lock():
    """Lock-then-validate: a reader certifying a key another txn holds
    prepared-but-unsettled must vote no (it could otherwise observe
    that txn half-applied); after the settle it certifies fine."""
    cluster, router, plane = build()
    key = keys_in_shards(router, 1)[0]
    shard = router.map.shard_of(key)
    votes = []

    def run():
        writer = PrepareRecord(txn_id=601, shard=shard, cc="occ",
                               auto_commit=False, reads=(),
                               writes=((W_PUT, key, b"w"),))
        out = yield from router.request(
            "txn_prepare", b"", value=encode_prepare(writer), shard=shard)
        votes.append(out.value)
        reader = PrepareRecord(txn_id=602, shard=shard, cc="occ",
                               auto_commit=True,
                               reads=((key, None),), writes=())
        out = yield from router.request(
            "txn_prepare", b"", value=encode_prepare(reader), shard=shard)
        votes.append(out.value)  # blocked by 601's prepared lock
        settle = SettleRecord(txn_id=601, shard=shard, commit=True)
        yield from router.request(
            "txn_settle", b"", value=encode_settle(settle), shard=shard)
        reader2 = PrepareRecord(txn_id=603, shard=shard, cc="occ",
                                auto_commit=True,
                                reads=((key, b"w"),), writes=())
        out = yield from router.request(
            "txn_prepare", b"", value=encode_prepare(reader2), shard=shard)
        votes.append(out.value)

    cluster.spawn_sender(run())
    cluster.run_to_quiescence(max_time=1.0)
    assert votes == ["yes", "no", "yes"]


# ------------------------------------------------------- reserved settle lane


def test_settle_lane_skips_queue_bound():
    """queue_depth=0 rejects every normal op, but settles ride the
    reserved lane — a prepared txn can always be settled."""
    cluster, router, plane = build(
        router_config=RouterConfig(queue_depth=0, max_retries=1))
    results = []

    def run():
        out = yield from router.request("put", b"k", b"v")
        results.append(out.status)
        settle = SettleRecord(txn_id=700, shard=0, commit=True)
        out = yield from router.request(
            "txn_settle", b"", value=encode_settle(settle), shard=0)
        results.append(out.status)

    cluster.spawn_sender(run())
    cluster.run_to_quiescence(max_time=1.0)
    assert results == ["rejected", "ok"]
    assert router.counters.settle_reserved == 1


# ----------------------------------------------------------- wound-wait age


def test_wound_wait_age_retained_across_retries():
    """A retry keeps its first attempt's age, so against txns that
    arrived later it is the *older* party: it wounds and waits instead
    of aborting again. A fresh id per retry would make every retry the
    youngest txn in the system and starve it."""
    sim = Simulator(seed=0)
    table = LockTable(sim, shard=0, poll=us(1.0))
    granted = []

    def victim():
        young = TxnHandle(20)
        with pytest.raises(TxnAborted):
            # Youngest vs holder 10: immediate wound-wait abort.
            yield from table.acquire(young, b"k", True, us(0.1))
        yield us(10.0)  # backoff; meanwhile txn 30 takes the lock
        retry = TxnHandle(40, age=20)
        # Retained age 20 beats holder 30: wound it and wait. With a
        # fresh age (40) this acquire would abort again.
        yield from table.acquire(retry, b"k", True, us(0.1))
        granted.append(sim.now)
        table.release_all(retry)

    def owner():
        first = TxnHandle(10)
        yield from table.acquire(first, b"k", True, us(0.1))
        yield us(5.0)
        table.release_all(first)
        later = TxnHandle(30)
        yield from table.acquire(later, b"k", True, us(0.1))
        yield us(10.0)  # holds across the retry's arrival
        assert later.wounded
        table.release_all(later)

    sim.spawn(owner(), name="owner")
    sim.spawn(victim(), name="victim")
    sim.run(until=ms(1.0))
    assert granted, "retained-age retry never got the lock"
    counters = table.counters()
    assert counters["wait_aborts"] == 1
    assert counters["wounds"] >= 1
    assert counters["waits"] >= 1
    assert table.held() == 0


def test_lock_table_shared_then_upgrade_conflict():
    sim = Simulator(seed=0)
    table = LockTable(sim, shard=0, poll=us(1.0))
    a, b = TxnHandle(1), TxnHandle(2)

    def run():
        yield from table.acquire(a, b"k", False, 0.0)
        yield from table.acquire(b, b"k", False, 0.0)   # S + S coexist
        with pytest.raises(TxnAborted):
            yield from table.acquire(b, b"k", True, 0.0)  # younger upgrade
        table.release_all(b)
        yield from table.acquire(a, b"k", True, 0.0)      # sole holder
        table.release_all(a)

    sim.spawn(run(), name="locks")
    sim.run(until=ms(1.0))
    assert table.held() == 0


# -------------------------------------------------------------- WAL recovery


def test_recovery_presumed_abort_for_begin_only():
    cluster, router, plane = build()
    device = cluster.storage.device(4, plane.config.wal_device)
    device.write(encode_wal(WAL_BEGIN, 7, participants=(0, 2)))
    reports = []

    def run():
        yield from device.fsync()
        report = yield from recover_txns(plane, node=4)
        reports.append(report)

    cluster.spawn_sender(run())
    cluster.run_to_quiescence(max_time=1.0)
    report = reports[0]
    assert report.ok and report.scanned == 1
    assert report.presumed_abort == 1 and report.aborted == [7]
    assert plane.counters.recovered_settles == 2


def test_recovery_redrives_logged_commit():
    """DECISION(commit) without END: the recovery pass re-drives commit
    settles, and shards still holding buffered writes apply them."""
    cluster, router, plane = build()
    key_a, key_b = keys_in_shards(router, 2, same_subgroup=False)
    shard_a = router.map.shard_of(key_a)
    shard_b = router.map.shard_of(key_b)
    device = cluster.storage.device(4, plane.config.wal_device)
    reports = []

    def run():
        for shard, key, val in ((shard_a, key_a, b"RA"),
                                (shard_b, key_b, b"RB")):
            rec = PrepareRecord(txn_id=9, shard=shard, cc="occ",
                                auto_commit=False, reads=(),
                                writes=((W_PUT, key, val),))
            out = yield from router.request(
                "txn_prepare", b"", value=encode_prepare(rec), shard=shard)
            assert out.value == "yes"
        device.write(encode_wal(WAL_BEGIN, 9,
                                participants=(shard_a, shard_b)))
        device.write(encode_wal(WAL_DECISION, 9, commit=True))
        yield from device.fsync()
        # Coordinator "crashed" here: run the recovery pass directly.
        report = yield from recover_txns(plane, node=4)
        reports.append(report)
        # A second pass finds only the END record: nothing to do.
        report = yield from recover_txns(plane, node=4)
        reports.append(report)

    cluster.spawn_sender(run())
    cluster.run_to_quiescence(max_time=1.0)
    first, second = reports
    assert first.ok and first.redriven == 1 and first.committed == [9]
    assert second.ok and second.completed == 1 and second.redriven == 0
    for key, val in ((key_a, b"RA"), (key_b, b"RB")):
        sg = router.map.subgroup_of_key(key)
        assert router.service.gateway_replica(sg).read(key) == val
    for replica in router.service.replicas.values():
        assert not replica.txn_prepared
        assert not replica.txn_locks


# ------------------------------------------------------------ txn checker


def test_txn_checker_selftest():
    ok, torn_report = txn_selftest()
    assert ok
    assert not torn_report.ok  # the torn multi-key write is caught


# ------------------------------------------------------- chaos scenarios


@pytest.mark.parametrize("name", ["txn-coordinator-crash",
                                  "txn-rebalance-open"])
def test_txn_scenarios_pass_and_audit(name):
    from repro.faults.scenarios import run_scenario
    for seed in (0, 5):
        result = run_scenario(name, seed)
        assert result.ok, (name, seed, result.problems)
        assert result.linearizability["ok"], (name, seed)


# ----------------------------------------------- randomized serializability


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000),
       cc=st.sampled_from(["occ", "2pl"]))
def test_random_histories_strictly_serializable(seed, cc):
    """Committed transactions form a strictly serializable history (in
    particular: atomic — no torn multi-key writes) under contention and
    fabric jitter, for both CC protocols."""
    cluster, router, plane = build(cc=cc, seed=seed % 17)
    cluster.faults.jitter(until=ms(1.0), extra_latency=us(1.0),
                          jitter=us(2.0))
    recorder = TxnHistoryRecorder()
    rng = Random(seed)

    def client(c):
        for i in range(4):
            ops = []
            for _ in range(rng.randrange(2, 4)):
                key = b"h%d" % rng.randrange(6)
                if rng.random() < 0.45:
                    ops.append(TxnOp("get", key))
                else:
                    ops.append(TxnOp("put", key, b"%d.%d.%d" % (c, i, seed)))
            txn_ref = recorder.invoke(c, cluster.sim.now)
            recorder.pending_writes(txn_ref, {
                op.key: op.value for op in ops if op.op == "put"})
            out = yield from plane.run_txn(ops, coordinator_node=4)
            if out.status == "committed":
                recorder.complete(
                    txn_ref, cluster.sim.now,
                    reads=observed_reads(ops, out.reads),
                    writes={op.key: op.value for op in ops
                            if op.op == "put"})
            else:
                recorder.drop(txn_ref)
            yield us(2.0)

    for c in range(3):
        cluster.spawn_sender(client(c), name=f"cl{c}")
    cluster.run_to_quiescence(max_time=2.0)

    state = {}
    for i in range(6):
        key = b"h%d" % i
        sg = router.map.subgroup_of_key(key)
        value = router.service.gateway_replica(sg).read(key)
        if value is not None:
            state[key] = value
    recorder.record_state_read(99, state, cluster.sim.now)
    report = check_txn_recorder(recorder)
    assert report.ok, report.violations
    assert router.verifier.check()

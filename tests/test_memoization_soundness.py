"""Predicate-memoization soundness: optimized vs reference, differentially.

The optimized engine memoizes falsy predicate evaluations on
generation counters (docs/ENGINE.md): a predicate whose
``generation()`` token is unchanged since its last falsy evaluation is
skipped without re-evaluating. Soundness rests on §2.2 monotonicity —
SST state a predicate reads only ever advances, so an unchanged token
means an unchanged (falsy) answer.

These tests are the empirical check of that argument: the *same*
seeded workload runs under ``engine="optimized"`` (memoizing, folded
wakes) and ``engine="reference"`` (the eager pre-rewrite loop), and
everything observable must be identical — the per-node delivery logs
(node, seq, sender, size, time), the trace fingerprint over every RDMA
write and delivery upcall, and the final clock. The runtime sanitizer
(§3.4 lock discipline, §2.2 monotonicity) is force-enabled for every
run, so a memoization bug that skipped a *stale* read or a fold that
touched SST outside the lock would also trip it directly.

Loads mirror the two benchmark figures most sensitive to predicate
scheduling: fig04's all-senders streaming subgroup (baseline and
fully-optimized configs) and fig12's early- vs late-lock-release
variants.
"""

import pytest

from repro.analysis.lint.sanitizer import (disable_global, enable_global,
                                           global_sanitizer)
from repro.analysis.trace import Tracer
from repro.core.config import SpindleConfig
from repro.workloads import Cluster, continuous_sender
from repro.workloads.runner import drive_to_completion

ENGINES = ("optimized", "reference")


@pytest.fixture(autouse=True)
def _force_sanitizer():
    """Every differential run executes under the strict runtime
    sanitizer, whether or not the session set SPINDLE_SANITIZE=1."""
    was_active = global_sanitizer() is not None
    enable_global(strict=True)
    yield
    if not was_active:
        disable_global()


def _run(engine, config, *, nodes=3, count=40, size=1024, window=16,
         seed=7):
    """One streaming-subgroup run; returns every observable we compare."""
    cluster = Cluster(nodes, config=config, seed=seed, engine=engine)
    cluster.add_subgroup(senders=list(range(nodes)), window=window,
                         message_size=size)
    cluster.build()
    tracer = Tracer(cluster)
    tracer.attach()
    deliveries = []
    for nid in cluster.node_ids:
        cluster.groups[nid].on_delivery(
            0, lambda d, nid=nid: deliveries.append(
                (nid, d.seq, d.sender, d.size, cluster.sim.now)))
    for nid in range(nodes):
        cluster.spawn_sender(
            continuous_sender(cluster.mc(nid, 0), count=count, size=size),
            name=f"sender{nid}")
    drive_to_completion(cluster, {0: count * nodes * nodes}, max_time=30.0)
    cluster.assert_all_delivered(0, per_sender=count)
    threads = [g.thread for g in cluster.groups.values()]
    return {
        "engine": engine,
        "fingerprint": tracer.fingerprint(),
        "deliveries": deliveries,
        "delivered": cluster.total_delivered(0),
        "end_time": cluster.sim.now,
        "evals_total": sum(t.evals_total for t in threads),
        "evals_skipped": sum(t.evals_skipped for t in threads),
    }


def _assert_equivalent(opt, ref):
    assert opt["deliveries"] == ref["deliveries"], \
        "memoized and eager runs delivered differently"
    assert opt["fingerprint"] == ref["fingerprint"]
    assert opt["delivered"] == ref["delivered"]
    assert opt["end_time"] == ref["end_time"]
    # The differential is only meaningful if the fast path actually
    # memoized something and the reference loop stayed eager.
    assert opt["evals_skipped"] > 0, "memoization never fired"
    assert ref["evals_skipped"] == 0, "reference loop must evaluate eagerly"


@pytest.mark.parametrize("config_name", ["baseline", "optimized"])
def test_fig04_style_load_is_engine_invariant(config_name):
    """fig04's streaming load: every node sends, every config variant
    delivers identically under memoized and eager evaluation."""
    config = getattr(SpindleConfig, config_name)()
    opt, ref = (_run(engine, config) for engine in ENGINES)
    _assert_equivalent(opt, ref)


@pytest.mark.parametrize("early_release", [True, False])
def test_fig12_style_lock_release_is_engine_invariant(early_release):
    """fig12's thread-sync variants: early vs late lock release changes
    *which* instants the predicate thread holds the lock — exactly the
    schedule the fast path's fold must reproduce bit for bit."""
    from dataclasses import replace
    config = replace(SpindleConfig.optimized(),
                     early_lock_release=early_release)
    opt, ref = (_run(engine, config, nodes=4, count=25, size=4096)
                for engine in ENGINES)
    _assert_equivalent(opt, ref)


def test_seed_sweep_is_engine_invariant():
    """A small seed sweep: the equivalence is not an artifact of one
    lucky schedule."""
    for seed in (0, 1, 2):
        opt, ref = (_run(engine, SpindleConfig.optimized(), nodes=2,
                         count=30, size=128, seed=seed)
                    for engine in ENGINES)
        _assert_equivalent(opt, ref)

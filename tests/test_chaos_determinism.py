"""Determinism regression: the same (cluster seed, fault schedule) pair
must reproduce a run byte-for-byte.

This is the property the whole chaos suite leans on: a failing CI seed
plus its schedule JSON artifact is a complete, exact reproducer. Two
independent executions must agree on the delivery-log digest, the trace
fingerprint (sha256 over every protocol event, timestamps included), the
drop accounting, and the fault-plane counters — and replaying through a
JSON round-trip of the schedule must change none of it."""

import pytest

from repro.core.config import SpindleConfig
from repro.faults import FaultSchedule
from repro.faults.scenarios import SCENARIOS, run_scenario
from repro.analysis.trace import Tracer
from repro.sim.units import ms, us
from repro.workloads import Cluster, continuous_sender


class TestScenarioDeterminism:
    def test_every_scenario_replays_identically(self):
        for name in SCENARIOS:
            first = run_scenario(name, seed=7)
            second = run_scenario(name, seed=7)
            assert first.log_digest == second.log_digest, name
            assert first.trace_fingerprint == second.trace_fingerprint, name
            assert first.to_dict() == second.to_dict(), name

    def test_different_seeds_change_the_run(self):
        """Sanity: the seed actually reaches the randomness (a scenario
        with jitter samples must not be seed-invariant)."""
        a = run_scenario("jitter-storm", seed=1)
        b = run_scenario("jitter-storm", seed=2)
        assert a.trace_fingerprint != b.trace_fingerprint

    def test_scenario_result_embeds_replayable_schedule(self):
        result = run_scenario("partition-heal", seed=3)
        schedule = FaultSchedule.from_json(result.schedule_json)
        assert schedule.seed == 3
        assert len(schedule) == 1
        assert schedule.events[0].kind == "partition"


def chaotic_run(schedule_json=None, seed=11, backend="spindle"):
    """One cluster run with a mixed fault diet; returns its fingerprints.

    The fault diet (jitter, buffer-partition, stall) is backend-generic:
    it reaches the protocols through the fabric and through
    ``protocol_processes``, not through any Spindle internals. Only the
    membership plane is Spindle-specific (Paxos handles failures
    internally), so it is enabled for the spindle run alone.
    """
    cluster = Cluster(4, config=SpindleConfig.optimized(), seed=seed,
                      backend=backend)
    cluster.add_subgroup(message_size=512, window=8)
    if cluster.backend.view_synchronous:
        cluster.enable_membership(heartbeat_period=us(100),
                                  suspicion_timeout=us(500),
                                  confirmation_grace=us(700))
    cluster.build()
    logs = {nid: [] for nid in cluster.node_ids}
    for nid in cluster.node_ids:
        cluster.group(nid).on_delivery(
            0, lambda d, nid=nid: logs[nid].append((d.seq, d.sender)))
    tracer = Tracer(cluster)
    tracer.attach()
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=50, size=512))
    if schedule_json is None:
        cluster.faults.jitter(until=ms(10), extra_latency=us(1),
                              jitter=us(4), at=0.0)
        cluster.faults.partition([[0, 1], [2, 3]], at=ms(1),
                                 heal_at=ms(1.6), mode="buffer")
        cluster.faults.stall(2, duration=us(400), at=ms(2))
    else:
        cluster.faults.apply(FaultSchedule.from_json(schedule_json))
    cluster.run(until=ms(40))
    return (logs, tracer.fingerprint(), cluster.fabric.drops_by_reason(),
            cluster.faults.counters(), cluster.faults.schedule.to_json())


@pytest.mark.parametrize("backend", ["spindle", "paxos"])
class TestScheduleReplay:
    def test_imperative_run_equals_json_replay(self, backend):
        """Faults injected by hand, serialized, then replayed from JSON
        give the identical run — logs, trace, drops, counters — on
        every ordering backend."""
        logs1, fp1, drops1, counters1, schedule_json = chaotic_run(
            backend=backend)
        logs2, fp2, drops2, counters2, round_trip = chaotic_run(
            schedule_json=schedule_json, backend=backend)
        assert logs2 == logs1
        assert fp2 == fp1
        assert drops2 == drops1
        assert counters2 == counters1
        assert round_trip == schedule_json

    def test_repeated_json_replay_is_stable(self, backend):
        _, fp_a, _, _, schedule_json = chaotic_run(backend=backend)
        _, fp_b, _, _, _ = chaotic_run(schedule_json=schedule_json,
                                       backend=backend)
        _, fp_c, _, _, _ = chaotic_run(schedule_json=schedule_json,
                                       backend=backend)
        assert fp_a == fp_b == fp_c

    def test_backends_diverge_under_the_same_schedule(self, backend):
        """The parametrization is not vacuous: the two protocols trace
        differently under the identical fault schedule."""
        if backend != "spindle":
            pytest.skip("cross-backend check runs once")
        _, fp_spindle, _, _, schedule_json = chaotic_run(backend="spindle")
        _, fp_paxos, _, _, _ = chaotic_run(backend="paxos")
        assert fp_spindle != fp_paxos

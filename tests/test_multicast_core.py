"""Integration tests for the atomic multicast protocol: ordering,
atomicity, batching behaviour, slot reuse, and configuration toggles."""

import pytest

from repro.core.config import SpindleConfig, TimingModel
from repro.sim.units import us
from repro.workloads import Cluster, continuous_sender, jittered_sender

ALL_CONFIGS = {
    "baseline": SpindleConfig.baseline(),
    "batching": SpindleConfig.batching_only(),
    "batching+nulls": SpindleConfig.batching_and_nulls(),
    "optimized": SpindleConfig.optimized(),
}


def build(n, config, size=1024, window=10, senders=None, subgroups=1):
    cluster = Cluster(num_nodes=n, config=config)
    for _ in range(subgroups):
        cluster.add_subgroup(message_size=size, window=window, senders=senders)
    cluster.build()
    return cluster


def attach_recorder(cluster, subgroup_id=0):
    log = {n: [] for n in cluster.members_of(subgroup_id)}
    for n in log:
        cluster.group(n).on_delivery(
            subgroup_id, lambda d, n=n: log[n].append((d.seq, d.sender, d.payload))
        )
    return log


@pytest.mark.parametrize("name", list(ALL_CONFIGS))
def test_total_order_identical_across_members(name):
    """The atomic multicast guarantee: every member delivers the same
    messages in the same order, under every configuration."""
    cluster = build(4, ALL_CONFIGS[name])
    log = attach_recorder(cluster)
    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(n, 0), count=30, size=1024,
            payload_fn=lambda k, n=n: b"%d:%d" % (n, k)))
    cluster.run()
    logs = list(log.values())
    assert all(l == logs[0] for l in logs)
    assert len(logs[0]) == 4 * 30


@pytest.mark.parametrize("name", list(ALL_CONFIGS))
def test_all_messages_delivered_exactly_once(name):
    cluster = build(3, ALL_CONFIGS[name])
    log = attach_recorder(cluster)
    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(n, 0), count=25, size=512,
            payload_fn=lambda k, n=n: b"%d:%d" % (n, k)))
    cluster.run()
    for n, entries in log.items():
        payloads = [p for (_, _, p) in entries]
        assert len(payloads) == len(set(payloads)) == 75


def test_fifo_per_sender():
    """Messages from one sender are delivered in send order."""
    cluster = build(3, SpindleConfig.optimized())
    log = attach_recorder(cluster)
    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(n, 0), count=40, size=256,
            payload_fn=lambda k, n=n: b"%d:%d" % (n, k)))
    cluster.run()
    for entries in log.values():
        for sender in cluster.node_ids:
            ks = [int(p.split(b":")[1]) for (_, s, p) in entries if s == sender]
            assert ks == sorted(ks)


def test_round_robin_seq_structure():
    """seq % num_senders equals the sender's rank (§2.1 delivery order)."""
    cluster = build(3, SpindleConfig.optimized())
    log = attach_recorder(cluster)
    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=10, size=256))
    cluster.run()
    senders = list(cluster.view.subgroups[0].senders)
    for entries in log.values():
        for seq, sender, _ in entries:
            assert senders[seq % len(senders)] == sender


def test_payload_integrity_end_to_end():
    cluster = build(2, SpindleConfig.optimized(), size=64)
    log = attach_recorder(cluster)
    expected = {n: [bytes([n]) * 32 + bytes([k]) for k in range(20)]
                for n in cluster.node_ids}
    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(n, 0), count=20, size=64,
            payload_fn=lambda k, n=n: expected[n][k]))
    cluster.run()
    for entries in log.values():
        for n in cluster.node_ids:
            got = [p for (_, s, p) in entries if s == n]
            assert got == expected[n]


def test_single_sender_subgroup():
    cluster = build(4, SpindleConfig.optimized(), senders=[0])
    log = attach_recorder(cluster)
    cluster.spawn_sender(continuous_sender(cluster.mc(0, 0), count=50, size=512))
    cluster.run()
    for entries in log.values():
        assert len(entries) == 50
        assert all(s == 0 for (_, s, _) in entries)


def test_non_sender_cannot_send():
    cluster = build(3, SpindleConfig.optimized(), senders=[0, 1])
    mc = cluster.mc(2, 0)
    with pytest.raises(RuntimeError, match="not a sender"):
        # Drive the generator far enough to hit the check.
        gen = mc.queue_message(64, None)
        cluster.sim.spawn(gen)
        cluster.run()


def test_window_limits_inflight_messages():
    """A sender can never have more than `window` undelivered messages."""
    window = 5
    cluster = build(3, SpindleConfig.optimized(), window=window)
    mc = cluster.mc(0, 0)
    max_inflight = 0

    def watcher():
        nonlocal max_inflight
        for _ in range(2000):
            max_inflight = max(max_inflight, len(mc.own_inflight))
            yield us(0.2)

    cluster.spawn_sender(watcher())
    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=60, size=512))
    cluster.run()
    assert max_inflight <= window
    cluster.assert_all_delivered(0, per_sender=60)


def test_sender_blocks_when_window_full():
    """With a tiny window the sender must wait for deliveries."""
    cluster = build(3, SpindleConfig.optimized(), window=2)
    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=30, size=512))
    cluster.run()
    cluster.assert_all_delivered(0, per_sender=30)
    stats = cluster.group(0).stats(0)
    assert stats.sends_blocked > 0
    assert stats.sender_wait_time > 0


def test_slot_reuse_never_overwrites_undelivered():
    """Ring-buffer safety: message content survives slot wrap-around."""
    cluster = build(3, SpindleConfig.optimized(), window=3, size=64)
    log = attach_recorder(cluster)
    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(n, 0), count=50, size=64,
            payload_fn=lambda k, n=n: b"%d:%d" % (n, k)))
    cluster.run()
    logs = list(log.values())
    assert all(l == logs[0] for l in logs)
    assert len(logs[0]) == 150


def test_two_node_minimal_group():
    cluster = build(2, SpindleConfig.optimized())
    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=20, size=128))
    cluster.run()
    cluster.assert_all_delivered(0, per_sender=20)


def test_sixteen_node_group():
    """The paper's largest configuration."""
    cluster = build(16, SpindleConfig.optimized(), window=20)
    for n in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=10, size=1024))
    cluster.run()
    cluster.assert_all_delivered(0, per_sender=10)


def test_multiple_subgroups_independent_streams():
    cluster = build(4, SpindleConfig.optimized(), subgroups=3)
    logs = [attach_recorder(cluster, sg) for sg in range(3)]
    for sg in range(3):
        for n in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(n, sg), count=15, size=512,
                payload_fn=lambda k, n=n, sg=sg: b"%d:%d:%d" % (sg, n, k)))
    cluster.run()
    for sg in range(3):
        entries = list(logs[sg].values())
        assert all(e == entries[0] for e in entries)
        assert len(entries[0]) == 60
        assert all(p.startswith(b"%d:" % sg) for (_, _, p) in entries[0])


def test_overlapping_subgroup_memberships():
    """Paper Table 1 style: overlapping subgroups with distinct members."""
    cluster = Cluster(num_nodes=5, config=SpindleConfig.optimized())
    cluster.add_subgroup(members=[0, 1, 2], window=8, message_size=256)
    cluster.add_subgroup(members=[0, 1, 3], window=8, message_size=256)
    cluster.add_subgroup(members=[0, 2, 4], window=8, message_size=256)
    cluster.build()
    for sg, members in enumerate([[0, 1, 2], [0, 1, 3], [0, 2, 4]]):
        for n in members:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(n, sg), count=12, size=256))
    cluster.run()
    for sg in range(3):
        cluster.assert_all_delivered(sg, per_sender=12)


def test_jittered_senders_still_totally_ordered():
    cluster = build(4, SpindleConfig.optimized())
    log = attach_recorder(cluster)
    for n in cluster.node_ids:
        cluster.spawn_sender(jittered_sender(
            cluster.mc(n, 0), count=25, size=256,
            rng=cluster.sim.rng, max_gap=us(20),
            payload_fn=lambda k, n=n: b"%d:%d" % (n, k)))
    cluster.run()
    logs = list(log.values())
    assert all(l == logs[0] for l in logs)
    assert len(logs[0]) == 100


class TestBatchingBehaviour:
    def test_baseline_sends_one_message_per_trigger(self):
        cluster = build(3, SpindleConfig.baseline())
        for n in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=20, size=512))
        cluster.run()
        stats = cluster.group(0).stats(0)
        assert set(stats.send_batches) == {1}

    def test_optimized_forms_multi_message_batches(self):
        cluster = build(4, SpindleConfig.optimized(), window=20)
        for n in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=60, size=2048))
        cluster.run()
        stats = cluster.group(0).stats(0)
        assert max(stats.delivery_batches) > 1  # batched deliveries happened
        assert stats.mean_batch(stats.delivery_batches) > 1.0

    def test_batching_reduces_rdma_writes(self):
        """§4.1.1: write count drops by an order of magnitude."""
        def writes(config):
            cluster = build(4, config, window=20)
            for n in cluster.node_ids:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(n, 0), count=50, size=2048))
            cluster.run()
            cluster.assert_all_delivered(0, per_sender=50)
            return cluster.fabric.total_writes_posted()

        baseline = writes(SpindleConfig.baseline())
        optimized = writes(SpindleConfig.batching_only())
        assert optimized < baseline / 2

    def test_batching_improves_throughput(self):
        def thr(config):
            cluster = build(8, config, size=10240, window=50)
            for n in cluster.node_ids:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(n, 0), count=60, size=10240))
            cluster.run()
            return cluster.aggregate_throughput(0)

        assert thr(SpindleConfig.batching_only()) > 3 * thr(SpindleConfig.baseline())

    def test_receive_batches_exceed_send_batches(self):
        """Fig. 7: receive merges all senders' streams, so its batches
        are larger than send batches on average."""
        cluster = build(8, SpindleConfig.optimized(), size=10240, window=50)
        for n in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(n, 0), count=80, size=10240))
        cluster.run()
        stats = cluster.group(0).stats(0)
        send_mean, receive_mean, delivery_mean = stats.mean_batches
        assert receive_mean > send_mean
        assert delivery_mean > send_mean


class TestThreadSyncOptimization:
    def test_early_release_reduces_lock_wait(self):
        def wait_time(config):
            cluster = build(6, config, size=10240, window=50)
            for n in cluster.node_ids:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(n, 0), count=60, size=10240))
            cluster.run()
            return sum(cluster.group(n).thread.lock.wait_time
                       for n in cluster.node_ids)

        held = wait_time(SpindleConfig.batching_and_nulls())
        released = wait_time(
            SpindleConfig.batching_and_nulls().with_(early_lock_release=True))
        assert released < held

    def test_early_release_does_not_break_ordering(self):
        cluster = build(4, SpindleConfig.optimized())
        log = attach_recorder(cluster)
        for n in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(n, 0), count=40, size=1024,
                payload_fn=lambda k, n=n: b"%d:%d" % (n, k)))
        cluster.run()
        logs = list(log.values())
        assert all(l == logs[0] for l in logs)


class TestFixedBatchAblation:
    def test_fixed_batch_still_correct(self):
        config = SpindleConfig.batching_only().with_(fixed_send_batch=8)
        cluster = build(3, config, window=20)
        log = attach_recorder(cluster)
        for n in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=30, size=512))
        cluster.run()
        logs = list(log.values())
        assert all(l == logs[0] for l in logs)
        assert len(logs[0]) == 90

    def test_fixed_batch_worse_latency_than_opportunistic(self):
        """§3.2: waiting to accumulate batches makes latency soar."""
        def latency(config):
            cluster = build(4, config, size=10240, window=50)
            for n in cluster.node_ids:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(n, 0), count=60, size=10240,
                    delay=us(5)))  # slight pacing: fixed batches must wait
            cluster.run()
            return cluster.mean_latency(0)

        opportunistic = latency(SpindleConfig.batching_only())
        fixed = latency(SpindleConfig.batching_only().with_(fixed_send_batch=16))
        assert fixed > 2 * opportunistic

"""Shared test fixtures.

``SPINDLE_SANITIZE=1 pytest`` runs the whole suite with the runtime
sanitizer active: every SST/NIC created anywhere is watched for §3.4
lock-discipline and §2.2 monotonicity violations, which fail the test
that caused them (docs/LINT.md).
"""

import os

import pytest


def _truthy(value):
    return (value or "").strip().lower() in ("1", "true", "yes", "on")


@pytest.fixture(scope="session", autouse=True)
def spindle_sanitizer():
    """Session-wide runtime sanitizer, gated on SPINDLE_SANITIZE=1."""
    if not _truthy(os.environ.get("SPINDLE_SANITIZE")):
        yield None
        return
    from repro.analysis.lint.sanitizer import disable_global, enable_global

    sanitizer = enable_global(strict=True)
    try:
        yield sanitizer
    finally:
        disable_global()


def pytest_report_header(config):
    if _truthy(os.environ.get("SPINDLE_SANITIZE")):
        return "spindle: runtime sanitizer ACTIVE (SPINDLE_SANITIZE=1)"
    return None

"""Shared test fixtures.

``SPINDLE_SANITIZE=1 pytest`` runs the whole suite with the runtime
sanitizer active: every SST/NIC created anywhere is watched for §3.4
lock-discipline and §2.2 monotonicity violations, which fail the test
that caused them (docs/LINT.md).

``SPINDLE_HB=1`` additionally runs the vector-clock happens-before
tracker (docs/CHECK.md): every SST write anywhere is checked for
write-write races against the simulated schedule, and a test that
produces an unexplained race fails at teardown.
"""

import os

import pytest


def _truthy(value):
    return (value or "").strip().lower() in ("1", "true", "yes", "on")


@pytest.fixture(scope="session", autouse=True)
def spindle_sanitizer():
    """Session-wide runtime sanitizer, gated on SPINDLE_SANITIZE=1."""
    if not _truthy(os.environ.get("SPINDLE_SANITIZE")):
        yield None
        return
    from repro.analysis.lint.sanitizer import disable_global, enable_global

    sanitizer = enable_global(strict=True)
    try:
        yield sanitizer
    finally:
        disable_global()


@pytest.fixture(scope="session", autouse=True)
def spindle_hb_session():
    """Session-wide happens-before tracker, gated on SPINDLE_HB=1."""
    if not _truthy(os.environ.get("SPINDLE_HB")):
        yield None
        return
    from repro.analysis.lint.hb import disable_hb, enable_hb

    tracker = enable_hb(strict=False)
    try:
        yield tracker
    finally:
        disable_hb()


@pytest.fixture(autouse=True)
def spindle_hb(spindle_hb_session):
    """Per-test race accounting: fail the test that raced, then reset
    the tracker so the next test starts from a clean partial order."""
    if spindle_hb_session is None:
        yield None
        return
    yield spindle_hb_session
    races = spindle_hb_session.unexplained_races()
    report = spindle_hb_session.report()
    spindle_hb_session.reset()
    if races:
        pytest.fail(f"happens-before tracker found unexplained "
                    f"race(s):\n{report}")


def pytest_report_header(config):
    parts = []
    if _truthy(os.environ.get("SPINDLE_SANITIZE")):
        parts.append("spindle: runtime sanitizer ACTIVE (SPINDLE_SANITIZE=1)")
    if _truthy(os.environ.get("SPINDLE_HB")):
        parts.append("spindle: happens-before tracker ACTIVE (SPINDLE_HB=1)")
    return parts or None

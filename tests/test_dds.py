"""Tests for the DDS layer: DCPS entities, QoS levels, storage, types."""

import pytest

from repro.core.config import SpindleConfig
from repro.dds import (
    DdsDomain,
    QosLevel,
    QosProfile,
    SequenceType,
    SsdModel,
    StructType,
    Topic,
)


def publisher_process(writer, samples):
    for sample in samples:
        yield from writer.write(sample)
    writer.finish()


def build_domain(n=4, qos=None, message_size=1024, window=10,
                 publishers=None, subscribers=None):
    domain = DdsDomain(n, config=SpindleConfig.optimized())
    topic = domain.create_topic(
        "telemetry",
        publishers=publishers if publishers is not None else [0],
        subscribers=subscribers if subscribers is not None else list(range(1, n)),
        qos=qos if qos is not None else QosProfile(QosLevel.ATOMIC),
        message_size=message_size,
        window=window,
    )
    domain.build()
    return domain, topic


class TestQosModel:
    def test_levels_ordered_by_guarantee(self):
        assert not QosLevel.UNORDERED.ordered
        assert QosLevel.ATOMIC.ordered
        assert QosLevel.VOLATILE.stores
        assert QosLevel.LOGGED.stores
        assert not QosLevel.ATOMIC.stores

    def test_history_depth_validation(self):
        QosProfile(QosLevel.VOLATILE, history_depth=10)
        with pytest.raises(ValueError):
            QosProfile(QosLevel.ATOMIC, history_depth=10)
        with pytest.raises(ValueError):
            QosProfile(QosLevel.VOLATILE, history_depth=0)


class TestTopics:
    def test_topic_ids_are_8bit(self):
        with pytest.raises(ValueError):
            Topic(256, "x", SequenceType(), QosProfile(), (0,), (1,))

    def test_domain_enforces_topic_budget(self):
        domain = DdsDomain(2)
        for i in range(256):
            domain.create_topic(f"t{i}", publishers=[0], subscribers=[1],
                                window=2, message_size=16)
        with pytest.raises(ValueError, match="8-bit"):
            domain.create_topic("overflow", publishers=[0], subscribers=[1])

    def test_duplicate_names_rejected(self):
        domain = DdsDomain(2)
        domain.create_topic("t", publishers=[0], subscribers=[1])
        with pytest.raises(ValueError, match="duplicate"):
            domain.create_topic("t", publishers=[0], subscribers=[1])

    def test_participants_are_union(self):
        domain = DdsDomain(5)
        topic = domain.create_topic("t", publishers=[3, 0], subscribers=[2, 3])
        assert topic.participants == (0, 2, 3)

    def test_topic_maps_to_subgroup_with_publishers_as_senders(self):
        domain, topic = build_domain(4)
        sg = domain.subgroup_of(topic)
        spec = domain.cluster.view.subgroups[sg]
        assert spec.senders == (0,)
        assert spec.members == (0, 1, 2, 3)


class TestPubSub:
    def test_single_publisher_samples_reach_all_subscribers(self):
        domain, topic = build_domain(4)
        readers = [domain.participant(n).create_reader(topic)
                   for n in (1, 2, 3)]
        samples = [b"sample-%03d" % k for k in range(30)]
        writer = domain.participant(0).create_writer(topic)
        domain.spawn(publisher_process(writer, samples))
        domain.run_to_quiescence()
        for reader in readers:
            got = [s.value for s in reader.take()]
            assert got == samples

    def test_listener_callback_invoked(self):
        domain, topic = build_domain(3)
        seen = []
        domain.participant(1).create_reader(topic,
                                            listener=lambda s: seen.append(s))
        writer = domain.participant(0).create_writer(topic)
        domain.spawn(publisher_process(writer, [b"a", b"b"]))
        domain.run_to_quiescence()
        assert [s.value for s in seen] == [b"a", b"b"]
        assert all(s.publisher == 0 for s in seen)

    def test_multiple_publishers_total_order(self):
        domain = DdsDomain(4, config=SpindleConfig.optimized())
        topic = domain.create_topic("multi", publishers=[0, 1],
                                    subscribers=[2, 3], window=8,
                                    message_size=256)
        domain.build()
        logs = {}
        for n in (2, 3):
            logs[n] = []
            domain.participant(n).create_reader(
                topic, listener=lambda s, n=n: logs[n].append((s.seq, s.value)))
        for p in (0, 1):
            writer = domain.participant(p).create_writer(topic)
            domain.spawn(publisher_process(
                writer, [b"%d:%d" % (p, k) for k in range(20)]))
        domain.run_to_quiescence()
        assert logs[2] == logs[3]
        assert len(logs[2]) == 40

    def test_non_publisher_cannot_write(self):
        domain, topic = build_domain(3)
        with pytest.raises(ValueError, match="not a publisher"):
            domain.participant(1).create_writer(topic)

    def test_non_participant_cannot_read(self):
        domain = DdsDomain(4)
        topic = domain.create_topic("t", publishers=[0], subscribers=[1])
        domain.build()
        with pytest.raises(ValueError, match="does not participate"):
            domain.participant(3).create_reader(topic)

    def test_oversized_sample_rejected(self):
        domain, topic = build_domain(3, message_size=16)
        writer = domain.participant(0).create_writer(topic)
        with pytest.raises(ValueError, match="exceeds topic max"):
            list(writer.write(b"x" * 17))

    def test_multiple_topics_isolated(self):
        domain = DdsDomain(3, config=SpindleConfig.optimized())
        alt = domain.create_topic("altitude", publishers=[0],
                                  subscribers=[1, 2], window=4,
                                  message_size=64)
        spd = domain.create_topic("speed", publishers=[1],
                                  subscribers=[0, 2], window=4,
                                  message_size=64)
        domain.build()
        got = {"altitude": [], "speed": []}
        domain.participant(2).create_reader(
            alt, listener=lambda s: got["altitude"].append(s.value))
        domain.participant(2).create_reader(
            spd, listener=lambda s: got["speed"].append(s.value))
        wa = domain.participant(0).create_writer(alt)
        ws = domain.participant(1).create_writer(spd)
        domain.spawn(publisher_process(wa, [b"alt%d" % k for k in range(5)]))
        domain.spawn(publisher_process(ws, [b"spd%d" % k for k in range(5)]))
        domain.run_to_quiescence()
        assert got["altitude"] == [b"alt%d" % k for k in range(5)]
        assert got["speed"] == [b"spd%d" % k for k in range(5)]


class TestQosBehaviour:
    def test_unordered_delivers_everything(self):
        domain, topic = build_domain(
            4, qos=QosProfile(QosLevel.UNORDERED), window=8)
        reader = domain.participant(1).create_reader(topic)
        writer = domain.participant(0).create_writer(topic)
        domain.spawn(publisher_process(
            writer, [b"%d" % k for k in range(40)]))
        domain.run_to_quiescence()
        assert reader.received == 40

    def test_volatile_store_retains_history(self):
        domain, topic = build_domain(
            3, qos=QosProfile(QosLevel.VOLATILE))
        reader = domain.participant(1).create_reader(topic)
        writer = domain.participant(0).create_writer(topic)
        domain.spawn(publisher_process(writer, [b"s%d" % k for k in range(10)]))
        domain.run_to_quiescence()
        assert len(reader.store) == 10
        history = reader.store.snapshot()
        assert [d for (_, d) in history] == [b"s%d" % k for k in range(10)]

    def test_volatile_history_depth_bounds_store(self):
        domain, topic = build_domain(
            3, qos=QosProfile(QosLevel.VOLATILE, history_depth=4))
        reader = domain.participant(1).create_reader(topic)
        writer = domain.participant(0).create_writer(topic)
        domain.spawn(publisher_process(writer, [b"s%d" % k for k in range(10)]))
        domain.run_to_quiescence()
        assert len(reader.store) == 4
        assert reader.store.total_stored == 10
        assert [d for (_, d) in reader.store.snapshot()] == [
            b"s6", b"s7", b"s8", b"s9"]

    def test_logged_qos_appends_to_ssd(self):
        domain, topic = build_domain(3, qos=QosProfile(QosLevel.LOGGED))
        reader = domain.participant(1).create_reader(topic)
        writer = domain.participant(0).create_writer(topic)
        domain.spawn(publisher_process(writer, [b"L%d" % k for k in range(8)]))
        domain.run_to_quiescence()
        log = domain.ssd_log(1)
        assert len(log) == 8
        assert [d for (_, d) in log.replay(topic.topic_id)] == [
            b"L%d" % k for k in range(8)]

    def test_qos_throughput_ladder(self):
        """Fig. 18 shape for Spindle-DDS: unordered ≈ atomic, volatile a
        bit lower, logged clearly lower."""
        def thr(level):
            domain = DdsDomain(4, config=SpindleConfig.optimized())
            topic = domain.create_topic(
                "bench", publishers=[0], subscribers=[1, 2, 3],
                qos=QosProfile(level), message_size=10240, window=50)
            domain.build()
            writer = domain.participant(0).create_writer(topic)

            def pub():
                for _ in range(150):
                    yield from writer.write_sized(10240)
                writer.finish()

            domain.spawn(pub())
            domain.run_to_quiescence(max_time=30.0)
            return domain.topic_throughput(topic)

        unordered = thr(QosLevel.UNORDERED)
        atomic = thr(QosLevel.ATOMIC)
        volatile = thr(QosLevel.VOLATILE)
        logged = thr(QosLevel.LOGGED)
        assert unordered == pytest.approx(atomic, rel=0.35)
        assert volatile < atomic
        assert logged < volatile


class TestDataTypes:
    def test_sequence_roundtrip(self):
        t = SequenceType()
        assert t.deserialize(t.serialize(b"abc")) == b"abc"
        with pytest.raises(TypeError):
            t.serialize("not bytes")

    def test_struct_roundtrip(self):
        t = StructType("Position", [("lat", "d"), ("lon", "d"), ("alt", "f")])
        value = {"lat": 48.85, "lon": 2.35, "alt": 1500.0}
        out = t.deserialize(t.serialize(value))
        assert out["lat"] == pytest.approx(48.85)
        assert out["alt"] == pytest.approx(1500.0)
        assert t.size == 20

    def test_struct_missing_field(self):
        t = StructType("P", [("x", "i")])
        with pytest.raises(ValueError, match="missing field"):
            t.serialize({})

    def test_struct_type_end_to_end(self):
        t = StructType("Reading", [("id", "i"), ("value", "d")])
        domain = DdsDomain(3, config=SpindleConfig.optimized())
        topic = domain.create_topic("readings", publishers=[0],
                                    subscribers=[1, 2], data_type=t,
                                    message_size=64, window=4)
        domain.build()
        seen = []
        domain.participant(1).create_reader(
            topic, listener=lambda s: seen.append(s.value))
        writer = domain.participant(0).create_writer(topic)
        domain.spawn(publisher_process(
            writer, [{"id": k, "value": k * 1.5} for k in range(5)]))
        domain.run_to_quiescence()
        assert [v["id"] for v in seen] == list(range(5))
        assert seen[3]["value"] == pytest.approx(4.5)


class TestSsdModel:
    def test_append_time_scales_with_size(self):
        ssd = SsdModel()
        assert ssd.append_time(10240) > ssd.append_time(64)
        assert ssd.append_time(10240) == pytest.approx(
            ssd.append_base + 10240 / ssd.write_bandwidth)

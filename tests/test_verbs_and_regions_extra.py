"""Additional coverage for the verbs facade, regions and latency model
edge cases."""

import pytest

from repro.rdma import (
    ByteRegion,
    CellRegion,
    LatencyModel,
    ProtectionDomain,
    RdmaFabric,
    WorkRequest,
    post_write,
)
from repro.sim import Simulator
from repro.sim.units import us


class TestLatencyModelVariants:
    def test_tcp_preset_slower_everywhere(self):
        rdma, tcp = LatencyModel(), LatencyModel.tcp()
        for size in (1, 1024, 10240, 1 << 20):
            assert tcp.wire_latency(size) > rdma.wire_latency(size)
            assert tcp.occupancy(size) >= rdma.occupancy(size)
        assert tcp.post_overhead > rdma.post_overhead

    def test_custom_model_flows_through_fabric(self):
        sim = Simulator()
        model = LatencyModel(base_latency=us(100))
        fabric = RdmaFabric(sim, latency=model)
        a, b = fabric.add_node(), fabric.add_node()
        src, dst = ByteRegion(8), ByteRegion(8)
        a.register(src)
        key = b.register(dst)
        fabric.queue_pair(a.node_id, b.node_id).post_write(src, 0, key, 0, 1)
        sim.run()
        assert sim.now > us(100)


class TestRegionEdgeCases:
    def test_byte_region_full_span_snapshot(self):
        r = ByteRegion(16)
        r.write_local(0, b"0123456789abcdef")
        snap = r.snapshot(0, 16)
        assert snap.size_bytes == 16
        fresh = ByteRegion(16)
        fresh.apply_write(snap)
        assert fresh.read(0, 16) == b"0123456789abcdef"

    def test_cell_region_single_cell(self):
        r = CellRegion([64])
        r.write_local(0, ("tuple", "value"))
        assert r.read(0) == ("tuple", "value")
        assert r.total_bytes == 64

    def test_cell_region_apply_partial_span(self):
        src = CellRegion([8, 8, 8, 8])
        dst = CellRegion([8, 8, 8, 8])
        for i in range(4):
            src.write_local(i, i * 10)
        dst.apply_write(src.snapshot(1, 2))
        assert dst.cells == [None, 10, 20, None]

    def test_region_repr_names(self):
        assert ByteRegion(8, name="buffer").name == "buffer"
        assert CellRegion([8], name="cells").name == "cells"


class TestVerbsCompletionOrdering:
    def test_completions_fire_in_post_order(self):
        sim = Simulator()
        fabric = RdmaFabric(sim)
        a, b = fabric.add_node(), fabric.add_node()
        pd_a, pd_b = ProtectionDomain(fabric, a), ProtectionDomain(fabric, b)
        mr_a = pd_a.alloc_buffer(1 << 20)
        mr_b = pd_b.alloc_buffer(1 << 20)
        qp = pd_a.queue_pair(b.node_id)
        done = []
        for i, size in enumerate((1 << 20, 64, 1 << 18)):
            post_write(qp, WorkRequest(
                mr_a, 0, mr_b, 0, size,
                on_complete=lambda i=i: done.append(i)))
        sim.run()
        assert done == [0, 1, 2]

    def test_two_pds_share_fabric(self):
        sim = Simulator()
        fabric = RdmaFabric(sim)
        a, b, c = fabric.add_node(), fabric.add_node(), fabric.add_node()
        pd_a = ProtectionDomain(fabric, a)
        mr_a = pd_a.alloc_buffer(32)
        mr_b = ProtectionDomain(fabric, b).alloc_buffer(32)
        mr_c = ProtectionDomain(fabric, c).alloc_buffer(32)
        mr_a.region.write_local(0, b"fanout")
        post_write(pd_a.queue_pair(b.node_id), WorkRequest(mr_a, 0, mr_b, 0, 6))
        post_write(pd_a.queue_pair(c.node_id), WorkRequest(mr_a, 0, mr_c, 0, 6))
        sim.run()
        assert mr_b.region.read(0, 6) == b"fanout"
        assert mr_c.region.read(0, 6) == b"fanout"

"""Tests for the Cluster builder API and GroupNode wiring."""

import pytest

from repro.core.config import SpindleConfig
from repro.workloads import Cluster, continuous_sender


class TestClusterLifecycle:
    def test_requires_at_least_one_node(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_requires_subgroup_before_build(self):
        cluster = Cluster(2)
        with pytest.raises(RuntimeError, match="at least one subgroup"):
            cluster.build()

    def test_cannot_build_twice(self):
        cluster = Cluster(2)
        cluster.add_subgroup(message_size=64, window=2)
        cluster.build()
        with pytest.raises(RuntimeError, match="already built"):
            cluster.build()

    def test_cannot_add_subgroup_after_build(self):
        cluster = Cluster(2)
        cluster.add_subgroup(message_size=64, window=2)
        cluster.build()
        with pytest.raises(RuntimeError, match="already built"):
            cluster.add_subgroup()

    def test_cannot_enable_membership_after_build(self):
        cluster = Cluster(2)
        cluster.add_subgroup(message_size=64, window=2)
        cluster.build()
        with pytest.raises(RuntimeError, match="already built"):
            cluster.enable_membership()

    def test_subgroup_ids_sequential(self):
        cluster = Cluster(3)
        a = cluster.add_subgroup(message_size=64, window=2)
        b = cluster.add_subgroup(message_size=64, window=2)
        assert (a.subgroup_id, b.subgroup_id) == (0, 1)

    def test_non_member_has_no_endpoint(self):
        cluster = Cluster(3)
        cluster.add_subgroup(members=[0, 1], message_size=64, window=2)
        cluster.build()
        with pytest.raises(KeyError):
            cluster.mc(2, 0)

    def test_stop_parks_threads(self):
        cluster = Cluster(2)
        cluster.add_subgroup(message_size=64, window=2)
        cluster.build()
        cluster.run(until=1e-4)
        cluster.stop()
        cluster.run()
        assert all(not g.thread.running for g in cluster.groups.values())


class TestMetricsApi:
    def build_loaded(self):
        cluster = Cluster(3, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=512, window=8)
        cluster.build()
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=30, size=512))
        cluster.run_to_quiescence()
        return cluster

    def test_per_node_throughput_covers_members(self):
        cluster = self.build_loaded()
        rates = cluster.per_node_throughput(0)
        assert sorted(rates) == [0, 1, 2]
        assert all(r > 0 for r in rates.values())

    def test_aggregate_is_mean_of_per_node(self):
        cluster = self.build_loaded()
        rates = cluster.per_node_throughput(0)
        assert cluster.aggregate_throughput(0) == pytest.approx(
            sum(rates.values()) / 3)

    def test_total_delivered(self):
        cluster = self.build_loaded()
        assert cluster.total_delivered(0) == 3 * 90

    def test_assert_all_delivered_detects_shortfall(self):
        cluster = self.build_loaded()
        with pytest.raises(AssertionError, match="delivered"):
            cluster.assert_all_delivered(0, per_sender=31)

    def test_mean_latency_positive_under_load(self):
        cluster = self.build_loaded()
        assert cluster.mean_latency(0) > 0

    def test_node_throughput_all_subgroups_sums(self):
        cluster = Cluster(2, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=256, window=4)
        cluster.add_subgroup(message_size=256, window=4)
        cluster.build()
        for sg in (0, 1):
            for nid in cluster.node_ids:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(nid, sg), count=10, size=256))
        cluster.run_to_quiescence()
        total = cluster.node_throughput_all_subgroups(0)
        parts = [cluster.group(0).stats(sg).throughput() for sg in (0, 1)]
        assert total == pytest.approx(sum(parts))


class TestSeedIsolation:
    def test_different_seeds_same_results_for_deterministic_load(self):
        """Without random workload elements, seeds don't change outcomes
        (determinism is structural, not RNG-dependent)."""
        def run(seed):
            cluster = Cluster(2, config=SpindleConfig.optimized(), seed=seed)
            cluster.add_subgroup(message_size=128, window=4)
            cluster.build()
            for nid in cluster.node_ids:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(nid, 0), count=15, size=128))
            cluster.run_to_quiescence()
            return cluster.sim.now

        assert run(1) == run(2)

"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.units import us


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_after_fires_in_order():
    sim = Simulator()
    fired = []
    sim.call_after(2.0, fired.append, "late")
    sim.call_after(1.0, fired.append, "early")
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 2.0


def test_same_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.call_after(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_run_until_stops_at_boundary():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, fired.append, "in")
    sim.call_after(3.0, fired.append, "out")
    sim.run(until=2.0)
    assert fired == ["in"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["in", "out"]


def test_run_until_advances_time_even_if_idle():
    sim = Simulator()
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_cannot_schedule_in_the_past():
    sim = Simulator()
    sim.call_after(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(0.5, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1.0, lambda: None)


def test_timer_cancel_prevents_fire():
    sim = Simulator()
    fired = []
    timer = sim.call_after(1.0, fired.append, "x")
    timer.cancel()
    sim.run()
    assert fired == []
    assert not timer.active


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.call_after(1.5, inner)

    def inner():
        fired.append(("inner", sim.now))

    sim.call_after(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 2.5)]


def test_stop_halts_run_loop():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, lambda: (fired.append(1), sim.stop()))
    sim.call_after(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 2]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    t = sim.call_after(3.0, lambda: None)
    assert sim.peek() == 3.0
    t.cancel()
    assert sim.peek() is None


def test_rng_is_seeded_and_deterministic():
    a = Simulator(seed=7).rng.random()
    b = Simulator(seed=7).rng.random()
    c = Simulator(seed=8).rng.random()
    assert a == b
    assert a != c


def test_microsecond_scale_accumulation():
    sim = Simulator()
    count = 0

    def tick():
        nonlocal count
        count += 1
        if count < 1000:
            sim.call_after(us(1), tick)

    sim.call_after(us(1), tick)
    sim.run()
    assert count == 1000
    assert sim.now == pytest.approx(us(1000))

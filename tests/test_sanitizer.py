"""Runtime-half tests: the sanitizer must catch an injected violation of
each kind (§3.4 lock discipline, §2.2 monotonicity) and stay quiet on
compliant protocol code."""

import pytest

from repro.analysis.lint.sanitizer import (
    Sanitizer,
    SanitizerError,
    disable_global,
    enable_global,
    global_sanitizer,
)
from repro.analysis.trace import Tracer
from repro.core.config import SpindleConfig, TimingModel
from repro.predicates.framework import Predicate, PredicateThread
from repro.rdma.fabric import RdmaFabric
from repro.sim import Simulator
from repro.sst import SST, SSTLayout, wire_ssts


@pytest.fixture(autouse=True)
def _pause_global_sanitizer():
    """These tests assert on their *own* Sanitizer instances; pause any
    session-wide one (SPINDLE_SANITIZE=1) so hook ordering and violation
    counts are exact, then restore it."""
    was_active = global_sanitizer() is not None
    if was_active:
        disable_global()
    yield
    if was_active:
        enable_global(strict=True)


def build_pair(config):
    """Two wired nodes with one counter/one flag column and a predicate
    thread on node 0."""
    sim = Simulator()
    fabric = RdmaFabric(sim)
    nodes = [fabric.add_node() for _ in range(2)]

    def layout():
        lay = SSTLayout()
        lay.counter("count")
        lay.flag("done")
        return lay

    ssts = {
        n.node_id: SST(layout(), fabric, n, [0, 1]) for n in nodes
    }
    wire_ssts(ssts)
    thread = PredicateThread(sim, config, TimingModel(), name="pt0")
    return sim, fabric, ssts, thread


class FiresOnce(Predicate):
    """Trigger body supplied per-test; fires exactly once."""

    def __init__(self, body):
        self.body = body
        self.fired = False
        self.name = "fires-once"

    def evaluate(self):
        return 1e-7, (not self.fired,) if not self.fired else None

    def trigger(self, value):
        self.fired = True
        result = yield from self.body()
        return result


# ==========================================================================
# Lock discipline (§3.4)
# ==========================================================================


class TestLockDiscipline:
    def test_catches_post_under_lock_with_early_release(self):
        sim, fabric, ssts, thread = build_pair(SpindleConfig.optimized())
        san = Sanitizer(strict=True)
        san.watch_thread(thread)
        san.watch_sst(ssts[0])

        def evil_body():
            # Drives the posts inside trigger() — i.e. under the shared
            # lock — which §3.4 forbids when early_lock_release is on.
            ssts[0].set(0, 1)
            yield from ssts[0].push(0, 1)

        thread.register(FiresOnce(evil_body))
        thread.start()
        with pytest.raises(SanitizerError, match="lock-discipline"):
            sim.run(until=1.0)
        assert len(san.violations) == 1
        assert san.violations[0].kind == "sanitize.lock-discipline"

    def test_deferred_posts_are_compliant(self):
        sim, fabric, ssts, thread = build_pair(SpindleConfig.optimized())
        san = Sanitizer(strict=True)
        san.watch_thread(thread)
        san.watch_sst(ssts[0])

        def good_body():
            ssts[0].set(0, 1)
            if False:
                yield  # make this a generator
            # Return the un-started push generator: the thread drives it
            # after releasing the lock (the §3.4 pattern).
            return ssts[0].push(0, 1)

        pred = FiresOnce(good_body)
        thread.register(pred)
        thread.start()
        sim.run(until=1.0)
        assert pred.fired
        assert san.violations == []
        assert san.checks_run > 0

    def test_baseline_config_may_post_under_lock(self):
        """Posting under the lock IS the baseline behaviour pre-§3.4."""
        sim, fabric, ssts, thread = build_pair(SpindleConfig.baseline())
        san = Sanitizer(strict=True)
        san.watch_thread(thread)
        san.watch_sst(ssts[0])

        def body():
            ssts[0].set(0, 1)
            yield from ssts[0].push(0, 1)

        thread.register(FiresOnce(body))
        thread.start()
        sim.run(until=1.0)
        assert san.violations == []

    def test_nic_level_hook_catches_raw_posts(self):
        sim, fabric, ssts, thread = build_pair(SpindleConfig.optimized())
        san = Sanitizer(strict=True)
        san.watch_thread(thread)
        san.watch_fabric(fabric)   # NIC hook, not the SST hook

        def evil_body():
            ssts[0].set(0, 1)
            yield from ssts[0].push(0, 1)

        thread.register(FiresOnce(evil_body))
        thread.start()
        with pytest.raises(SanitizerError, match="lock-discipline"):
            sim.run(until=1.0)


# ==========================================================================
# Monotonicity across pushes (§2.2)
# ==========================================================================


class TestMonotonicity:
    def _push_once(self, sim, sst, lo=0, hi=1):
        done = []

        def proc():
            yield from sst.push(lo, hi)
            done.append(True)

        sim.spawn(proc())
        sim.run(until=sim.now + 1.0)
        assert done

    def test_catches_counter_regression_across_pushes(self):
        sim, fabric, ssts, _ = build_pair(SpindleConfig.optimized())
        san = Sanitizer(strict=True)
        san.watch_sst(ssts[0])
        ssts[0].set(0, 10)
        self._push_once(sim, ssts[0])
        # Inject the violation: bypass SST.set entirely, as buggy code
        # would, then publish the regressed value.
        ssts[0].rows[0].write_local(0, 4)  # spindle-lint: allow[sst-monotonic-write]
        with pytest.raises(SanitizerError, match="monotonicity"):
            self._push_once(sim, ssts[0])
        assert "regressed" in san.violations[0].detail

    def test_catches_flag_reset_across_pushes(self):
        sim, fabric, ssts, _ = build_pair(SpindleConfig.optimized())
        san = Sanitizer(strict=True)
        san.watch_sst(ssts[0])
        ssts[0].set(1, True)
        self._push_once(sim, ssts[0], 1, 2)
        ssts[0].rows[0].write_local(1, False)  # spindle-lint: allow[sst-monotonic-write]
        with pytest.raises(SanitizerError, match="monotonicity"):
            self._push_once(sim, ssts[0], 1, 2)

    def test_monotone_pushes_are_clean(self):
        sim, fabric, ssts, _ = build_pair(SpindleConfig.optimized())
        san = Sanitizer(strict=True)
        san.watch_sst(ssts[0])
        for value in (0, 3, 3, 7):
            ssts[0].set(0, value)
            self._push_once(sim, ssts[0])
        assert san.violations == []
        assert san.checks_run >= 4


# ==========================================================================
# Reporting model + global installation
# ==========================================================================


class TestReporting:
    def test_non_strict_records_through_tracer(self):
        sim, fabric, ssts, _ = build_pair(SpindleConfig.optimized())
        tracer = Tracer(cluster=None)
        san = Sanitizer(strict=False, tracer=tracer)
        san.watch_sst(ssts[0])
        ssts[0].set(0, 5)

        def proc():
            yield from ssts[0].push(0, 1)
            ssts[0].rows[0].write_local(0, 1)  # spindle-lint: allow[sst-monotonic-write]
            yield from ssts[0].push(0, 1)

        sim.spawn(proc())
        sim.run()
        assert len(san.violations) == 1
        events = tracer.select(kind="sanitize.monotonicity")
        assert len(events) == 1 and events[0].node == 0
        assert "sanitize" in san.report()


class TestGlobalInstall:
    def test_enable_watches_new_instances_and_disable_restores(self):
        assert global_sanitizer() is None
        san = enable_global(strict=True)
        try:
            assert global_sanitizer() is san
            assert enable_global() is san  # idempotent
            sim, fabric, ssts, thread = build_pair(SpindleConfig.optimized())
            # Instances created while enabled are auto-watched.
            assert san._on_sst_push in ssts[0].on_push
            assert thread in san._threads
            assert all(san._on_node_post in n.on_post
                       for n in fabric.nodes.values())
        finally:
            assert disable_global() is san
        assert global_sanitizer() is None
        sim2, fabric2, ssts2, thread2 = build_pair(SpindleConfig.optimized())
        assert ssts2[0].on_push == []
        assert thread2 not in san._threads

    def test_global_sanitizer_catches_injected_violation_end_to_end(self):
        san = enable_global(strict=True)
        try:
            sim, fabric, ssts, thread = build_pair(SpindleConfig.optimized())

            def evil_body():
                ssts[0].set(0, 1)
                yield from ssts[0].push(0, 1)

            thread.register(FiresOnce(evil_body))
            thread.start()
            with pytest.raises(SanitizerError):
                sim.run(until=1.0)
        finally:
            disable_global()

"""Tests for the downstream applications: replicated KV store and
replicated message queue."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import KvCommand, attach_queue, attach_store
from repro.core.config import SpindleConfig
from repro.workloads import Cluster


def build_kv(n=3, window=8, config=None):
    cluster = Cluster(n, config=config or SpindleConfig.optimized())
    cluster.add_subgroup(message_size=512, window=window)
    cluster.build()
    stores = {nid: attach_store(cluster.group(nid), 0)
              for nid in cluster.node_ids}
    return cluster, stores


class TestKvCommandCodec:
    def test_roundtrip_all_fields(self):
        data = KvCommand.encode(3, b"key", b"value!", b"expected")
        assert KvCommand.decode(data) == (3, b"key", b"expected", b"value!")

    def test_empty_fields(self):
        data = KvCommand.encode(4)
        assert KvCommand.decode(data) == (4, b"", b"", b"")

    @given(op=st.integers(1, 4),
           key=st.binary(max_size=64),
           value=st.binary(max_size=200),
           expected=st.binary(max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, op, key, value, expected):
        data = KvCommand.encode(op, key, value, expected)
        assert KvCommand.decode(data) == (op, key, expected, value)


class TestKvStore:
    def test_put_replicates_to_all(self):
        cluster, stores = build_kv()

        def writer():
            ok = yield from stores[0].put(b"altitude", b"9500")
            assert ok is True

        cluster.spawn_sender(writer())
        cluster.run_to_quiescence()
        for store in stores.values():
            assert store.read(b"altitude") == b"9500"

    def test_delete_returns_existence(self):
        cluster, stores = build_kv()
        results = {}

        def actions():
            yield from stores[0].put(b"k", b"v")
            results["first"] = yield from stores[0].delete(b"k")
            results["second"] = yield from stores[0].delete(b"k")

        cluster.spawn_sender(actions())
        cluster.run_to_quiescence()
        assert results == {"first": True, "second": False}
        assert all(s.read(b"k") is None for s in stores.values())

    def test_concurrent_writers_converge(self):
        """Concurrent PUTs to the same key: the total order decides, and
        every replica agrees on the winner."""
        cluster, stores = build_kv(n=4)
        for nid in cluster.node_ids:
            def writer(nid=nid):
                for k in range(10):
                    yield from stores[nid].put(b"shared", b"v%d-%d" % (nid, k))
            cluster.spawn_sender(writer())
        cluster.run_to_quiescence()
        values = {s.read(b"shared") for s in stores.values()}
        assert len(values) == 1
        checksums = {s.checksum() for s in stores.values()}
        assert len(checksums) == 1

    def test_cas_exactly_one_winner(self):
        """All nodes CAS from the same expected value: the delivery
        order guarantees exactly one succeeds."""
        cluster, stores = build_kv(n=4)
        outcomes = {}

        def seed():
            yield from stores[0].put(b"lock", b"free")

        cluster.spawn_sender(seed())
        cluster.run_to_quiescence()

        for nid in cluster.node_ids:
            def contender(nid=nid):
                won = yield from stores[nid].cas(
                    b"lock", b"free", b"owner-%d" % nid)
                outcomes[nid] = won
            cluster.spawn_sender(contender())
        cluster.run_to_quiescence()
        assert sum(outcomes.values()) == 1
        winner = next(nid for nid, won in outcomes.items() if won)
        for store in stores.values():
            assert store.read(b"lock") == b"owner-%d" % winner

    def test_sync_read_sees_preceding_write(self):
        """Linearizability: a fenced read after a completed write must
        observe it, from any replica."""
        cluster, stores = build_kv(n=3)
        observed = {}

        def writer_then_reader():
            yield from stores[0].put(b"x", b"1")
            # Read from a *different* replica, linearizably.
            value = yield from stores[1].sync_read(b"x")
            observed["value"] = value

        cluster.spawn_sender(writer_then_reader())
        cluster.run_to_quiescence()
        assert observed["value"] == b"1"

    def test_apply_order_identical(self):
        cluster, stores = build_kv(n=3)
        for nid in cluster.node_ids:
            def writer(nid=nid):
                for k in range(8):
                    yield from stores[nid].put(b"k%d-%d" % (nid, k), b"v")
            cluster.spawn_sender(writer())
        cluster.run_to_quiescence()
        logs = [s.apply_log for s in stores.values()]
        assert all(log == logs[0] for log in logs)

    def test_read_only_replica_cannot_write(self):
        cluster = Cluster(3, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=256, window=4, senders=[0, 1])
        cluster.build()
        store = attach_store(cluster.group(2), 0)
        with pytest.raises(RuntimeError, match="read-only"):
            gen = store.put(b"k", b"v")
            cluster.spawn_sender(gen)
            cluster.run_to_quiescence()

    def test_requires_atomic_mode(self):
        cluster = Cluster(2, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=256, window=4,
                             delivery_mode="unordered")
        cluster.build()
        with pytest.raises(ValueError, match="atomic delivery"):
            attach_store(cluster.group(0), 0)


class TestReplicatedQueue:
    def build(self, n=3, workers=2):
        cluster = Cluster(n, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=256, window=8)
        cluster.build()
        queues = {nid: attach_queue(cluster.group(nid), 0,
                                    num_workers=workers)
                  for nid in cluster.node_ids}
        return cluster, queues

    def test_entries_visible_on_all_replicas(self):
        cluster, queues = self.build()

        def producer():
            for k in range(10):
                yield from queues[0].enqueue(b"job-%d" % k)

        cluster.spawn_sender(producer())
        cluster.run_to_quiescence()
        for queue in queues.values():
            assert queue.enqueued_total == 10

    def test_deterministic_assignment_across_replicas(self):
        cluster, queues = self.build(workers=3)
        for nid in cluster.node_ids:
            def producer(nid=nid):
                for k in range(9):
                    yield from queues[nid].enqueue(b"%d:%d" % (nid, k))
            cluster.spawn_sender(producer())
        cluster.run_to_quiescence()
        for worker in range(3):
            takes = [q.take(worker) for q in queues.values()]
            assert all(t == takes[0] for t in takes)
            assert all(idx % 3 == worker for idx, _, _ in takes[0])

    def test_fifo_per_producer(self):
        cluster, queues = self.build(workers=1)
        for nid in cluster.node_ids:
            def producer(nid=nid):
                for k in range(12):
                    yield from queues[nid].enqueue(b"%d:%d" % (nid, k))
            cluster.spawn_sender(producer())
        cluster.run_to_quiescence()
        entries = queues[1].take(0)
        for nid in cluster.node_ids:
            mine = [p for _, s, p in entries if s == nid]
            assert mine == [b"%d:%d" % (nid, k) for k in range(12)]

    def test_take_limit_and_backlog(self):
        cluster, queues = self.build(workers=1)

        def producer():
            for k in range(10):
                yield from queues[0].enqueue(b"j%d" % k)

        cluster.spawn_sender(producer())
        cluster.run_to_quiescence()
        queue = queues[2]
        assert queue.backlog() == 10
        first = queue.take(0, limit=4)
        assert len(first) == 4
        assert queue.backlog(0) == 6
        assert queue.take(0)[0][2] == b"j4"

    def test_validation(self):
        cluster, queues = self.build()
        with pytest.raises(IndexError):
            queues[0].take(5)
        cluster2 = Cluster(2)
        cluster2.add_subgroup(message_size=128, window=4,
                              delivery_mode="unordered")
        cluster2.build()
        with pytest.raises(ValueError, match="atomic"):
            attach_queue(cluster2.group(0), 0)

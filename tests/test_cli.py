"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCli:
    def test_single_prints_metrics(self, capsys):
        code, out = run_cli(capsys, "single", "--nodes", "3", "--count", "30",
                            "--size", "1024")
        assert code == 0
        assert "throughput (GB/s)" in out
        assert "RDMA writes" in out

    def test_single_baseline_config(self, capsys):
        code, out = run_cli(capsys, "single", "--nodes", "2", "--count", "20",
                            "--config", "baseline", "--size", "512")
        assert code == 0
        assert "mean batches s/r/d" in out

    def test_multi_subgroups(self, capsys):
        code, out = run_cli(capsys, "multi", "--nodes", "3",
                            "--subgroups", "3", "--count", "20",
                            "--size", "512")
        assert code == 0
        assert "throughput (GB/s)" in out

    def test_delayed_reports_interdelivery(self, capsys):
        code, out = run_cli(capsys, "delayed", "--nodes", "4",
                            "--delayed", "1", "--delay-us", "50",
                            "--count", "40", "--size", "1024",
                            "--config", "nulls")
        assert code == 0
        assert "interdelivery" in out

    def test_rdmc_lists_all_schemes(self, capsys):
        code, out = run_cli(capsys, "rdmc", "--nodes", "4",
                            "--size", str(1 << 20))
        assert code == 0
        for scheme in ("sequential", "binomial", "binomial_pipeline"):
            assert scheme in out

    def test_compare_lists_all_configs(self, capsys):
        code, out = run_cli(capsys, "compare", "--nodes", "2",
                            "--count", "30", "--size", "512")
        assert code == 0
        for config in ("baseline", "batching", "nulls", "optimized"):
            assert config in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["single", "--config", "warp-speed"])

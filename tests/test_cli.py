"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestCli:
    def test_single_prints_metrics(self, capsys):
        code, out = run_cli(capsys, "single", "--nodes", "3", "--count", "30",
                            "--size", "1024")
        assert code == 0
        assert "throughput (GB/s)" in out
        assert "RDMA writes" in out

    def test_single_baseline_config(self, capsys):
        code, out = run_cli(capsys, "single", "--nodes", "2", "--count", "20",
                            "--config", "baseline", "--size", "512")
        assert code == 0
        assert "mean batches s/r/d" in out

    def test_multi_subgroups(self, capsys):
        code, out = run_cli(capsys, "multi", "--nodes", "3",
                            "--subgroups", "3", "--count", "20",
                            "--size", "512")
        assert code == 0
        assert "throughput (GB/s)" in out

    def test_delayed_reports_interdelivery(self, capsys):
        code, out = run_cli(capsys, "delayed", "--nodes", "4",
                            "--delayed", "1", "--delay-us", "50",
                            "--count", "40", "--size", "1024",
                            "--config", "nulls")
        assert code == 0
        assert "interdelivery" in out

    def test_rdmc_lists_all_schemes(self, capsys):
        code, out = run_cli(capsys, "rdmc", "--nodes", "4",
                            "--size", str(1 << 20))
        assert code == 0
        for scheme in ("sequential", "binomial", "binomial_pipeline"):
            assert scheme in out

    def test_compare_lists_all_configs(self, capsys):
        code, out = run_cli(capsys, "compare", "--nodes", "2",
                            "--count", "30", "--size", "512")
        assert code == 0
        for config in ("baseline", "batching", "nulls", "optimized"):
            assert config in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_config(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["single", "--config", "warp-speed"])


class TestChaosCli:
    def test_list_names_every_scenario(self, capsys):
        from repro.faults.scenarios import SCENARIOS

        code, out = run_cli(capsys, "chaos", "--list")
        assert code == 0
        for name in SCENARIOS:
            assert name in out

    def test_scenario_run_prints_status(self, capsys):
        code, out = run_cli(capsys, "chaos", "--scenario", "jitter-storm",
                            "--seed", "3")
        assert code == 0
        assert "jitter-storm" in out
        assert "ok" in out

    def test_repeat_checks_replay(self, capsys):
        code, out = run_cli(capsys, "chaos", "--scenario", "sender-stall",
                            "--seed", "5", "--repeat", "2")
        assert code == 0
        assert "FAIL" not in out

    def test_json_output_is_parseable(self, capsys):
        import json

        code, out = run_cli(capsys, "chaos", "--scenario", "leader-crash",
                            "--seed", "2", "--json")
        assert code == 0
        payload = json.loads(out.strip())
        assert payload["ok"] is True
        assert payload["replay_ok"] is True
        assert payload["schedule_json"]

    def test_unknown_scenario_exits_2(self, capsys):
        code, _ = run_cli(capsys, "chaos", "--scenario", "black-swan")
        assert code == 2

    def test_no_selection_exits_2(self, capsys):
        code, _ = run_cli(capsys, "chaos")
        assert code == 2

    def test_failure_writes_artifact_and_exits_1(self, capsys, tmp_path,
                                                 monkeypatch):
        import json

        from repro.faults.scenarios import SCENARIOS, ScenarioResult

        def broken(seed):
            return ScenarioResult(
                name="broken", seed=seed, ok=False,
                problems=["node 1 delivered 0/10"], duration=0.0,
                delivered={}, log_digest="d" * 64,
                trace_fingerprint="f" * 64, drops_by_reason={},
                fault_counters={}, views={},
                schedule_json='{"version": 1, "seed": 0, "events": []}')

        monkeypatch.setitem(SCENARIOS, "broken", broken)
        code, _ = run_cli(capsys, "chaos", "--scenario", "broken",
                          "--seed", "9", "--artifact-dir", str(tmp_path))
        assert code == 1
        artifact = tmp_path / "chaos-broken-seed9.json"
        assert artifact.exists()
        data = json.loads(artifact.read_text())
        assert data["problems"] == ["node 1 delivered 0/10"]
        assert "spindle-repro chaos --scenario broken --seed 9" in \
            data["replay_cmd"]

    def test_sweep_runs_multiple_seeds(self, capsys):
        code, out = run_cli(capsys, "chaos", "--scenario", "crash-restart",
                            "--seed", "1", "--sweep", "2")
        assert code == 0
        lines = [ln for ln in out.splitlines() if "crash-restart" in ln]
        # Two per-seed rows plus the aggregated per-scenario summary row.
        assert len(lines) == 3
        assert "2/2" in lines[-1]

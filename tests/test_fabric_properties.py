"""Property-based tests of the RDMA fabric's ordering guarantees —
the foundations the SST's correctness rests on."""

from hypothesis import given, settings, strategies as st

from repro.rdma import ByteRegion, CellRegion, RdmaFabric
from repro.sim import Simulator
from repro.sst import SST, GuardedValue, SSTLayout, wire_ssts


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 512 * 1024), min_size=1, max_size=20),
)
def test_same_qp_writes_never_reorder(sizes):
    """Per-QP FIFO: whatever the mix of write sizes, arrival order at
    the destination equals post order (the RDMA fence guarantee)."""
    sim = Simulator()
    fabric = RdmaFabric(sim)
    a, b = fabric.add_node(), fabric.add_node()
    src = CellRegion(sizes, name="src")
    dst = CellRegion(sizes, name="dst")
    a.register(src)
    key = b.register(dst)
    qp = fabric.queue_pair(a.node_id, b.node_id)
    arrivals = []
    b.on_remote_write.append(lambda region, snap: arrivals.append(snap.offset))
    for i in range(len(sizes)):
        src.write_local(i, i)
        qp.post_write(src, i, key, i, 1)
    sim.run()
    assert arrivals == list(range(len(sizes)))


@settings(max_examples=30, deadline=None)
@given(
    updates=st.lists(st.tuples(st.integers(0, 7), st.integers(1, 100)),
                     min_size=1, max_size=30),
)
def test_monotonic_counters_observed_monotonic(updates):
    """Counters pushed through the SST are seen non-decreasing at every
    observation point, for any interleaving of updates and pushes."""
    sim = Simulator()
    fabric = RdmaFabric(sim)
    nodes = [fabric.add_node(), fabric.add_node()]
    ssts = {}
    for node in nodes:
        layout = SSTLayout()
        for c in range(8):
            layout.counter(f"c{c}", initial=0)
        ssts[node.node_id] = SST(layout, fabric, node,
                                 [n.node_id for n in nodes])
    wire_ssts(ssts)
    observed = {c: [] for c in range(8)}
    fabric.nodes[1].on_remote_write.append(
        lambda region, snap: [observed[c].append(ssts[1].read(0, c))
                              for c in range(8)])

    def writer():
        values = [0] * 8
        for col, bump in updates:
            values[col] += bump
            ssts[0].set(col, values[col])
            yield from ssts[0].push(col, col + 1)
            yield 1e-8

    sim.spawn(writer())
    sim.run()
    for col, seen in observed.items():
        assert seen == sorted(seen)


@settings(max_examples=25, deadline=None)
@given(
    payload_sizes=st.lists(st.integers(1, 10000), min_size=1, max_size=15),
    gaps=st.lists(st.floats(0, 1e-5), min_size=15, max_size=15),
)
def test_guarded_value_never_torn(payload_sizes, gaps):
    """The guard counter/data idiom guarantees freshness one way: a
    reader that sees guard version v sees the v-th payload *or newer*
    (data may race ahead of its guard between publishes; it must never
    lag it). Checked under arbitrary publish pacing."""
    sim = Simulator()
    fabric = RdmaFabric(sim)
    nodes = [fabric.add_node(), fabric.add_node()]
    layouts = {}
    ssts = {}
    for node in nodes:
        layout = SSTLayout()
        cols = GuardedValue.declare(layout, "gv", size=16384)
        ssts[node.node_id] = SST(layout, fabric, node,
                                 [n.node_id for n in nodes])
        layouts[node.node_id] = cols
    wire_ssts(ssts)
    gv0 = GuardedValue(ssts[0], *layouts[0])
    gv1 = GuardedValue(ssts[1], *layouts[1])

    payloads = [("v%03d|" % i) * max(1, size // 5)
                for i, size in enumerate(payload_sizes)]
    index_of = {payload: i for i, payload in enumerate(payloads)}
    torn = []

    def check(region, snap):
        version, value = gv1.read(0)
        if version >= 0 and index_of.get(value, -1) < version:
            torn.append(version)

    fabric.nodes[1].on_remote_write.append(check)

    def publisher():
        for payload, gap in zip(payloads, gaps):
            yield from gv0.publish(payload)
            if gap:
                yield gap

    sim.spawn(publisher())
    sim.run()
    assert torn == []
    assert gv1.read(0) == (len(payloads) - 1, payloads[-1])


@settings(max_examples=30, deadline=None)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3),
                  st.integers(1, 4096)),
        min_size=1, max_size=40,
    ),
)
def test_multi_node_write_storm_all_land(writes):
    """Random write storms between 4 nodes: every surviving write lands
    (no losses, no phantom writes) and counters balance."""
    sim = Simulator()
    fabric = RdmaFabric(sim)
    nodes = [fabric.add_node() for _ in range(4)]
    regions = {}
    for node in nodes:
        region = ByteRegion(4096, name=f"r{node.node_id}")
        node.register(region)
        regions[node.node_id] = region
    posted = 0
    for src, dst, size in writes:
        if src == dst:
            continue
        qp = fabric.queue_pair(src, dst)
        qp.post_write(regions[src], 0, regions[dst].key, 0, min(size, 4096))
        posted += 1
    sim.run()
    received = sum(n.writes_received for n in nodes)
    assert received == posted
    assert fabric.total_writes_posted() == posted

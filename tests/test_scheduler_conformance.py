"""Scheduler conformance: the calendar-queue engine vs the reference heap.

Both engines implement the same (time, seq) contract — same-timestamp
events fire in scheduling order, cancelled timers never advance the
clock — and docs/ENGINE.md promises they are interchangeable bit for
bit. These tests pin the contract on each engine alone and
differentially between them, with special attention to the places the
calendar queue could plausibly diverge: the now-queue fast path, the
bucket ring's edges, far-heap re-anchoring, ``until`` pushback, and
cancellation while a batch is draining.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim import Simulator, SimulationError
from repro.sim.engine import _BUCKET_WIDTH, _NUM_BUCKETS, AtTime

ENGINES = ("optimized", "reference")
HORIZON = _NUM_BUCKETS * _BUCKET_WIDTH

both_engines = pytest.mark.parametrize("engine", ENGINES)


# ---------------------------------------------------------------------------
# Same-timestamp FIFO, across every insertion path
# ---------------------------------------------------------------------------


@both_engines
def test_same_time_fifo_across_apis(engine):
    """Interleaved call_at / post_at / post_after / post at one instant
    fire in scheduling order, regardless of which API queued them."""
    sim = Simulator(engine=engine)
    fired = []
    t = 3 * _BUCKET_WIDTH  # mid-ring, not the now-queue

    def arm():
        sim.call_at(t, fired.append, 0)
        sim.post_at(t, fired.append, 1)
        sim.post_after(t - sim.now, fired.append, 2)
        sim.call_at(t, fired.append, 3)
        sim.post_at(t, fired.append, 4)

    sim.post(arm)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]
    assert sim.now == t


@both_engines
def test_now_queue_fifo_with_nested_posts(engine):
    """Zero-delay posts made *while draining* the current instant fire
    after everything already queued at that instant (larger seq)."""
    sim = Simulator(engine=engine)
    fired = []

    def first():
        fired.append("first")
        sim.post(fired.append, "nested")  # same instant, queued last
        sim.post_after(0.0, fired.append, "nested-after")

    sim.call_after(1e-6, first)
    sim.call_at(1e-6, fired.append, "second")
    sim.run()
    assert fired == ["first", "second", "nested", "nested-after"]


@both_engines
def test_attime_hits_exact_float(engine):
    """yield AtTime(t) resumes at bit-for-bit ``t`` even when the chain
    of additions that produced ``t`` is not representable as now+delta."""
    sim = Simulator(engine=engine)
    t = 0.1 + 0.2 + 0.3  # classic float-association trap
    seen = []

    def proc():
        yield AtTime(t)
        seen.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert seen == [t]


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------


@both_engines
def test_cancel_during_same_instant_drain(engine):
    """A timer cancelled by an earlier callback *at the same timestamp*
    must not fire: the batch is already staged when the canceller runs."""
    sim = Simulator(engine=engine)
    fired = []
    victim = {}

    def canceller():
        fired.append("canceller")
        victim["t"].cancel()

    sim.call_at(1e-6, canceller)
    victim["t"] = sim.call_at(1e-6, fired.append, "victim")
    sim.call_at(1e-6, fired.append, "survivor")
    sim.run()
    assert fired == ["canceller", "survivor"]


@both_engines
def test_cancelled_tail_never_advances_clock(engine):
    """Cancelled timers are skipped without moving ``now`` or counting
    as executed events — on both engines."""
    sim = Simulator(engine=engine)
    fired = []
    sim.call_after(1e-6, fired.append, "real")
    late = sim.call_after(5.0, fired.append, "cancelled")
    late.cancel()
    far = sim.call_after(7.0, fired.append, "cancelled-far")
    far.cancel()
    end = sim.run()
    assert fired == ["real"]
    assert end == 1e-6 and sim.now == 1e-6
    assert sim.events_executed == 1
    assert not late.active and not far.active


@both_engines
def test_peek_skips_cancelled(engine):
    """peek() reports the next *live* event on both engines."""
    sim = Simulator(engine=engine)
    doomed = sim.call_after(1e-6, lambda: None)
    sim.call_after(2e-6, lambda: None)
    doomed.cancel()
    assert sim.peek() == 2e-6
    sim.run()
    assert sim.peek() is None


# ---------------------------------------------------------------------------
# Bucket-ring boundaries and the far heap
# ---------------------------------------------------------------------------


@both_engines
def test_horizon_boundary_ordering(engine):
    """Events straddling the near/far boundary (one bucket-width apart,
    exactly at the horizon, just inside, far beyond) fire in time order
    with FIFO ties."""
    sim = Simulator(engine=engine)
    fired = []
    times = [HORIZON - _BUCKET_WIDTH, HORIZON - 1e-9, HORIZON,
             HORIZON + 1e-9, 10 * HORIZON]
    for i, t in enumerate(times):
        sim.call_at(t, fired.append, i)
        sim.call_at(t, fired.append, (i, "tie"))
    sim.run()
    assert fired == [x for i in range(len(times)) for x in (i, (i, "tie"))]
    assert sim.now == 10 * HORIZON


@both_engines
def test_far_heap_reanchor_preserves_fifo(engine):
    """After the ring drains, the window re-anchors at the next far
    event; same-timestamp FIFO must survive the bucket refill."""
    sim = Simulator(engine=engine)
    fired = []
    base = 5 * HORIZON  # all of these start in the far heap
    for i in range(8):
        sim.call_at(base + (i % 3) * _BUCKET_WIDTH, fired.append, i)
    sim.run()
    expect = sorted(range(8), key=lambda i: (i % 3, i))
    assert fired == expect


@both_engines
def test_past_bucket_scheduling_after_reanchor(engine):
    """A callback firing late in the re-anchored window can schedule
    into what is now a *past* bucket index (time < active bucket's
    nominal start): it must still fire, in time order."""
    sim = Simulator(engine=engine)
    fired = []

    def late():
        fired.append("late")
        # now is deep in the window; a tiny delay lands in the active
        # (partially drained) bucket — the "past bucket" clamp path.
        sim.call_after(1e-10, fired.append, "tiny")
        sim.post(fired.append, "instant")

    sim.call_at(HORIZON - 2e-9, late)
    sim.run()
    assert fired == ["late", "instant", "tiny"]


@both_engines
def test_until_pushback_preserves_batch_order(engine):
    """run(until) that stops *inside* a same-timestamp batch pushes the
    un-fired remainder back; a later run() must fire it in the original
    scheduling order (the far heap can then briefly hold near events —
    the merge must compare full (time, seq))."""
    sim = Simulator(engine=engine)
    fired = []
    t = 2e-6
    for i in range(6):
        sim.call_at(t, fired.append, i)
    sim.call_at(t + _BUCKET_WIDTH / 2, fired.append, "later")
    assert sim.run(until=1e-6) == 1e-6
    assert fired == []
    sim.call_at(t, fired.append, 6)  # arrives between the two runs
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5, 6, "later"]


@both_engines
def test_schedule_in_past_raises(engine):
    sim = Simulator(engine=engine)
    sim.call_after(1e-6, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.call_at(sim.now - 1e-9, lambda: None)
    with pytest.raises(SimulationError):
        sim.post_at(sim.now - 1e-9, lambda: None)
    with pytest.raises(SimulationError):
        sim.post_after(-1e-9, lambda: None)


# ---------------------------------------------------------------------------
# Differential: both engines, identical firing order
# ---------------------------------------------------------------------------


def _run_schedule(engine, delays):
    """Drive one engine through a deterministic schedule derived from
    ``delays``: roots at call_after(d), each root fanning out through a
    different scheduling API, children re-scheduling recursively so the
    now-queue, ring, and far heap all see traffic."""
    sim = Simulator(engine=engine)
    log = []

    def child(i, depth):
        log.append((sim.now, "child", i, depth))
        if depth < 2:
            sim.post_after((i % 7) * (_BUCKET_WIDTH / 3), child, i, depth + 1)

    def root(i, d):
        log.append((sim.now, "root", i))
        mode = i % 4
        if mode == 0:
            sim.post(child, i, 0)
        elif mode == 1:
            sim.post_after(d, child, i, 0)
        elif mode == 2:
            sim.post_at(sim.now + d, child, i, 0)
        else:
            timer = sim.call_after(d / 2, child, i, 0)
            if i % 8 == 3:
                timer.cancel()

    for i, d in enumerate(delays):
        sim.call_after(d, root, i, d)
    end = sim.run()
    return log, end, sim.events_executed


delay_strategy = st.lists(
    st.one_of(
        # Exact boundary-hitting values: 0, one bucket, the horizon...
        st.sampled_from([0.0, _BUCKET_WIDTH, _BUCKET_WIDTH * 3,
                         HORIZON, HORIZON + _BUCKET_WIDTH, 2.5 * HORIZON]),
        # ...and arbitrary delays spanning now-queue to far-heap scales.
        st.floats(min_value=0.0, max_value=1e-3,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1, max_size=30,
)


@given(delays=delay_strategy)
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_calendar_and_heap_fire_identically(delays):
    """Property: for any schedule, the optimized engine fires the exact
    same callbacks at the exact same timestamps in the exact same order
    as the reference heap, and retires the same number of events."""
    results = {eng: _run_schedule(eng, delays) for eng in ENGINES}
    opt, ref = results["optimized"], results["reference"]
    assert opt[0] == ref[0]   # full (time, label) logs identical
    assert opt[1] == ref[1]   # same end-of-run clock
    assert opt[2] == ref[2]   # same events_executed


@given(delays=delay_strategy, until=st.floats(min_value=0.0, max_value=2e-3,
                                              allow_nan=False))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_split_runs_match_single_run(delays, until):
    """Property: run(until) + run() equals one uninterrupted run() on
    both engines — pushback may not reorder anything."""
    whole = {eng: _run_schedule(eng, delays) for eng in ENGINES}

    for eng in ENGINES:
        sim = Simulator(engine=eng)
        log = []

        def child(i, depth, sim=sim, log=log):
            log.append((sim.now, "child", i, depth))
            if depth < 2:
                sim.post_after((i % 7) * (_BUCKET_WIDTH / 3),
                               child, i, depth + 1)

        def root(i, d, sim=sim, log=log, child=child):
            log.append((sim.now, "root", i))
            mode = i % 4
            if mode == 0:
                sim.post(child, i, 0)
            elif mode == 1:
                sim.post_after(d, child, i, 0)
            elif mode == 2:
                sim.post_at(sim.now + d, child, i, 0)
            else:
                timer = sim.call_after(d / 2, child, i, 0)
                if i % 8 == 3:
                    timer.cancel()

        for i, d in enumerate(delays):
            sim.call_after(d, root, i, d)
        sim.run(until=until)
        sim.run()
        assert log == whole[eng][0]

"""Tests for the null-send scheme (§3.3) and its four required
properties: sender-invariance, low overhead, correctness (no stall),
and quiescence."""

import pytest

from repro.core.config import SpindleConfig
from repro.sim.units import ms, us
from repro.workloads import Cluster, continuous_sender, limited_sender

BATCHING = SpindleConfig.batching_only()
WITH_NULLS = SpindleConfig.batching_and_nulls()


def build(n, config, window=20, size=1024, senders=None):
    cluster = Cluster(num_nodes=n, config=config)
    cluster.add_subgroup(message_size=size, window=window, senders=senders)
    cluster.build()
    return cluster


class TestCorrectnessNoStall:
    def test_silent_sender_stalls_delivery_without_nulls(self):
        """Without nulls, one silent sender blocks the round-robin order
        after the first round (the Fig. 2 pathology)."""
        cluster = build(3, BATCHING)
        # Node 2 never sends; others send 30 each.
        for n in (0, 1):
            cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=30, size=1024))
        cluster.run(until=ms(50))
        # Delivery cannot pass seq 1 (round 0 of sender 2 never arrives).
        delivered = cluster.group(0).stats(0).delivered
        assert delivered <= 2

    def test_nulls_unblock_silent_sender(self):
        """With nulls, active senders' messages all get delivered."""
        cluster = build(3, WITH_NULLS)
        for n in (0, 1):
            cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=30, size=1024))
        cluster.run()
        for n in cluster.node_ids:
            assert cluster.group(n).stats(0).delivered == 60
        assert cluster.group(2).stats(0).nulls_sent > 0

    def test_indefinitely_delayed_half_senders(self):
        """§4.2.1 'lengthy delay': half the senders send a short burst
        then go silent; the rest must still finish."""
        cluster = build(8, WITH_NULLS, window=20, size=4096)
        for n in range(4):
            cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=50, size=4096))
        for n in range(4, 8):
            cluster.spawn_sender(limited_sender(cluster.mc(n, 0), count=2, size=4096))
        cluster.run()
        expected = 4 * 50 + 4 * 2
        for n in cluster.node_ids:
            assert cluster.group(n).stats(0).delivered == expected

    def test_one_member_does_all_sends(self):
        """§4.2.3: all members declared senders, one does all the work."""
        cluster = build(6, WITH_NULLS, window=20)
        cluster.spawn_sender(continuous_sender(cluster.mc(0, 0), count=80, size=1024))
        cluster.run()
        for n in cluster.node_ids:
            assert cluster.group(n).stats(0).delivered == 80

    def test_delayed_sender_catches_up(self):
        """A 100 µs-delayed sender must not stall others (delivery
        completes) and its own messages still arrive everywhere."""
        cluster = build(4, WITH_NULLS, window=20, size=4096)
        cluster.spawn_sender(continuous_sender(
            cluster.mc(0, 0), count=20, size=4096, delay=us(100)))
        for n in (1, 2, 3):
            cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=60, size=4096))
        cluster.run()
        expected = 20 + 3 * 60
        for n in cluster.node_ids:
            assert cluster.group(n).stats(0).delivered == expected

    def test_total_order_preserved_with_nulls(self):
        cluster = build(4, WITH_NULLS, window=10, size=512)
        log = {n: [] for n in cluster.node_ids}
        for n in cluster.node_ids:
            cluster.group(n).on_delivery(
                0, lambda d, n=n: log[n].append((d.seq, d.sender, d.payload)))
        cluster.spawn_sender(continuous_sender(
            cluster.mc(0, 0), count=15, size=512, delay=us(50),
            payload_fn=lambda k: b"slow:%d" % k))
        for n in (1, 2, 3):
            cluster.spawn_sender(continuous_sender(
                cluster.mc(n, 0), count=40, size=512,
                payload_fn=lambda k, n=n: b"%d:%d" % (n, k)))
        cluster.run()
        logs = list(log.values())
        assert all(l == logs[0] for l in logs)
        assert len(logs[0]) == 15 + 3 * 40


class TestTailCompletion:
    def test_paced_senders_never_stall_at_the_tail(self):
        """Regression: null demand that arises while a sender still has
        queued application messages must be honoured once its queue
        drains — otherwise the final round-robin rounds can starve and
        the last messages are never delivered (§3.3 property 3)."""
        cluster = build(16, SpindleConfig.optimized(), window=20, size=4096)
        for n in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(n, 0), count=40, size=4096, delay=us(25)))
        cluster.run_to_quiescence(max_time=30.0)
        for n in cluster.node_ids:
            assert cluster.group(n).stats(0).delivered == 16 * 40

    def test_tail_completion_across_paces(self):
        for pace in (0.0, us(3), us(60)):
            cluster = build(6, SpindleConfig.optimized(), window=8)
            for n in cluster.node_ids:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(n, 0), count=30, size=1024, delay=pace))
            cluster.run_to_quiescence(max_time=30.0)
            for n in cluster.node_ids:
                assert cluster.group(n).stats(0).delivered == 180, pace


class TestQuiescence:
    def test_no_nulls_when_nobody_sends(self):
        cluster = build(4, WITH_NULLS)
        cluster.run(until=ms(5))
        for n in cluster.node_ids:
            assert cluster.group(n).stats(0).nulls_sent == 0
        assert cluster.fabric.total_writes_posted() == 0

    def test_system_quiesces_after_traffic(self):
        """The null chain terminates: the sim's event queue drains."""
        cluster = build(4, WITH_NULLS, window=10)
        for n in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=20, size=1024))
        end = cluster.run()  # would never return if nulls chained forever
        assert end < 1.0
        writes_at_drain = cluster.fabric.total_writes_posted()
        cluster.sim.run(until=end + ms(10))
        assert cluster.fabric.total_writes_posted() == writes_at_drain

    def test_no_nulls_for_single_sender(self):
        """§4.2.2: with one sender, no nulls can ever be sent."""
        cluster = build(4, WITH_NULLS, senders=[0])
        cluster.spawn_sender(continuous_sender(cluster.mc(0, 0), count=50, size=1024))
        cluster.run()
        for n in cluster.node_ids:
            assert cluster.group(n).stats(0).nulls_sent == 0


class TestSenderInvariance:
    def test_half_senders_throughput_not_collapsed(self):
        """Property 1: with only half the senders active, per-sender
        progress stays healthy (delivery isn't serialized on nulls)."""
        def runtime(active):
            cluster = build(8, WITH_NULLS, window=20, size=10240)
            for n in range(active):
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(n, 0), count=50, size=10240))
            end = cluster.run()
            for n in cluster.node_ids:
                assert cluster.group(n).stats(0).delivered == active * 50
            return end

        t_all = runtime(8)
        t_half = runtime(4)
        # Half the messages should take well under the full-sender time.
        assert t_half < t_all

    def test_nulls_accelerate_delivery_of_active_senders(self):
        """§4.2.1: with one delayed sender, mean inter-delivery time of
        a continuous sender's messages is far smaller with nulls."""
        def interdelivery(config):
            cluster = build(4, config, window=20, size=4096)
            cluster.spawn_sender(continuous_sender(
                cluster.mc(0, 0), count=10, size=4096, delay=us(100)))
            for n in (1, 2, 3):
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(n, 0), count=40, size=4096))
            cluster.run(until=ms(100))
            stats = cluster.group(1).stats(0)
            return stats.mean_interdelivery(1)  # rank 1 = node 1, continuous

        with_nulls = interdelivery(WITH_NULLS)
        without = interdelivery(BATCHING)
        assert with_nulls > 0
        assert with_nulls < without / 2


class TestLowOverhead:
    def test_continuous_sending_overhead_bounded(self):
        """Property 2 (§4.2.2): with all senders continuously active,
        null-sends cost at most a modest slowdown."""
        def thr(config):
            cluster = build(8, config, window=50, size=10240)
            for n in cluster.node_ids:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(n, 0), count=60, size=10240))
            cluster.run()
            return cluster.aggregate_throughput(0)

        base = thr(BATCHING)
        nulls = thr(WITH_NULLS)
        assert nulls > 0.6 * base  # paper: up to 25 % drop for small groups


class TestDeclaredInactivity:
    def test_declare_inactive_skips_rounds(self):
        """§3.3: a sender can declare planned inactivity; others proceed
        without any null traffic from third parties."""
        cluster = build(3, BATCHING, window=10)

        def declarer():
            yield from cluster.mc(2, 0).declare_inactive(rounds=40)

        cluster.spawn_sender(declarer())
        for n in (0, 1):
            cluster.spawn_sender(continuous_sender(cluster.mc(n, 0), count=40, size=1024))
        cluster.run()
        for n in cluster.node_ids:
            assert cluster.group(n).stats(0).delivered == 80

    def test_declare_inactive_requires_sender(self):
        cluster = build(3, BATCHING, senders=[0, 1])
        with pytest.raises(RuntimeError, match="only senders"):
            list(cluster.mc(2, 0).declare_inactive(5))

    def test_declare_inactive_rejects_nonpositive(self):
        cluster = build(3, BATCHING)
        with pytest.raises(ValueError):
            list(cluster.mc(0, 0).declare_inactive(0))


class TestNullBatching:
    def test_batched_nulls_amortize_announcement_pushes(self):
        """§3.3: announcing a sweep's nulls as one integer means fewer
        announcement pushes than nulls; one push per null otherwise."""
        def ratio(null_send_batched):
            config = WITH_NULLS.with_(null_send_batched=null_send_batched)
            cluster = build(4, config, window=20, size=2048)
            cluster.spawn_sender(continuous_sender(
                cluster.mc(0, 0), count=10, size=2048, delay=us(200)))
            for n in (1, 2, 3):
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(n, 0), count=50, size=2048))
            cluster.run()
            for n in cluster.node_ids:
                assert cluster.group(n).stats(0).delivered == 10 + 150
            stats = cluster.group(0).stats(0)  # the delayed sender
            assert stats.nulls_sent > 0
            return stats.nulls_sent / stats.null_announce_pushes

        assert ratio(False) == pytest.approx(1.0)
        assert ratio(True) > 1.0

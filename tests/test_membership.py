"""Unit tests for the membership model (views, subgroup specs)."""

import pytest

from repro.core.membership import SubgroupSpec, View


class TestSubgroupSpec:
    def test_senders_default_to_members(self):
        spec = SubgroupSpec.of(0, [3, 1, 2])
        assert spec.senders == (3, 1, 2)

    def test_rank_follows_sender_order(self):
        spec = SubgroupSpec.of(0, [1, 2, 3], senders=[3, 1])
        assert spec.rank_of(3) == 0
        assert spec.rank_of(1) == 1
        assert spec.rank_of(2) is None

    def test_senders_must_be_members(self):
        with pytest.raises(ValueError, match="not subgroup members"):
            SubgroupSpec.of(0, [1, 2], senders=[9])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SubgroupSpec.of(0, [1, 1, 2])
        with pytest.raises(ValueError):
            SubgroupSpec.of(0, [1, 2], senders=[1, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SubgroupSpec(0, (), (), 10, 100)

    def test_bad_window_and_size(self):
        with pytest.raises(ValueError):
            SubgroupSpec.of(0, [1], window=0)
        with pytest.raises(ValueError):
            SubgroupSpec.of(0, [1], message_size=0)


class TestView:
    def make_view(self):
        return View(
            view_id=0,
            members=(0, 1, 2, 3, 4),
            subgroups=(
                SubgroupSpec.of(0, [0, 1, 2]),
                SubgroupSpec.of(1, [0, 1, 3], senders=[0, 1]),
                SubgroupSpec.of(2, [0, 2, 4]),
            ),
        )

    def test_table1_structure(self):
        """The paper's Table 1 example: 5 nodes, 3 overlapping subgroups."""
        view = self.make_view()
        assert view.leader == 0
        assert view.rank_of(3) == 3
        assert view.subgroups[1].rank_of(3) is None  # node 3 not a sender

    def test_subgroup_members_must_be_in_view(self):
        with pytest.raises(ValueError, match="not in view"):
            View(0, (0, 1), (SubgroupSpec.of(0, [0, 5]),))

    def test_duplicate_subgroup_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate subgroup ids"):
            View(0, (0, 1), (SubgroupSpec.of(0, [0]), SubgroupSpec.of(0, [1])))

    def test_without_removes_failed_everywhere(self):
        view = self.make_view()
        succ = view.without([2])
        assert succ.view_id == 1
        assert succ.members == (0, 1, 3, 4)
        assert succ.subgroups[0].members == (0, 1)
        assert succ.departed == (2,)

    def test_without_preserves_sender_order(self):
        view = View(0, (0, 1, 2, 3),
                    (SubgroupSpec.of(0, [0, 1, 2, 3], senders=[3, 1, 0]),))
        succ = view.without([1])
        assert succ.subgroups[0].senders == (3, 0)

    def test_without_drops_empty_subgroup(self):
        view = View(0, (0, 1, 2), (SubgroupSpec.of(0, [2]),
                                   SubgroupSpec.of(1, [0, 1])))
        succ = view.without([2])
        assert [sg.subgroup_id for sg in succ.subgroups] == [1]

    def test_without_promotes_member_if_all_senders_fail(self):
        view = View(0, (0, 1, 2), (SubgroupSpec.of(0, [0, 1, 2], senders=[2]),))
        succ = view.without([2])
        assert succ.subgroups[0].senders == (0,)

    def test_cannot_empty_the_view(self):
        view = View(0, (0,), (SubgroupSpec.of(0, [0]),))
        with pytest.raises(ValueError):
            view.without([0])

    def test_leader_changes_when_head_fails(self):
        view = self.make_view()
        assert view.without([0]).leader == 1

"""Unit tests for generator-based simulated processes."""

import pytest

from repro.sim import Event, Simulator, SimulationError
from repro.sim.units import us


def test_process_sleeps_for_yielded_delay():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(sim.now)
        yield 1.0
        trace.append(sim.now)
        yield 0.5
        trace.append(sim.now)

    sim.spawn(worker())
    sim.run()
    assert trace == [0.0, 1.0, 1.5]


def test_process_result_and_completion_event():
    sim = Simulator()

    def worker():
        yield 1.0
        return 42

    proc = sim.spawn(worker())
    sim.run()
    assert not proc.alive
    assert proc.result == 42
    assert proc.completion.triggered
    assert proc.completion.value == 42


def test_join_another_process():
    sim = Simulator()
    log = []

    def child():
        yield 2.0
        return "done"

    def parent():
        proc = sim.spawn(child(), name="child")
        result = yield proc
        log.append((sim.now, result))

    sim.spawn(parent())
    sim.run()
    assert log == [(2.0, "done")]


def test_wait_on_event_receives_value():
    sim = Simulator()
    event = Event(sim)
    got = []

    def waiter():
        value = yield event
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.call_after(3.0, event.trigger, "payload")
    sim.run()
    assert got == [(3.0, "payload")]


def test_wait_on_already_triggered_event_resumes_immediately():
    sim = Simulator()
    event = Event(sim)
    event.trigger("early")
    got = []

    def waiter():
        yield 1.0
        value = yield event
        got.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert got == [(1.0, "early")]


def test_yield_none_is_cooperative_reschedule():
    sim = Simulator()
    order = []

    def a():
        order.append("a1")
        yield None
        order.append("a2")

    def b():
        order.append("b1")
        yield None
        order.append("b2")

    sim.spawn(a())
    sim.spawn(b())
    sim.run()
    assert order == ["a1", "b1", "a2", "b2"]
    assert sim.now == 0.0


def test_killed_process_never_resumes():
    sim = Simulator()
    trace = []

    def worker():
        trace.append("start")
        yield 5.0
        trace.append("never")

    proc = sim.spawn(worker())
    sim.call_after(1.0, proc.kill)
    sim.run()
    assert trace == ["start"]
    assert not proc.alive


def test_kill_while_waiting_on_event_is_safe():
    sim = Simulator()
    event = Event(sim)

    def worker():
        yield event
        raise AssertionError("should not resume")

    proc = sim.spawn(worker())
    sim.call_after(1.0, proc.kill)
    sim.call_after(2.0, event.trigger, None)
    sim.run()
    assert not proc.alive


def test_negative_yield_raises():
    sim = Simulator()

    def worker():
        yield -1.0

    sim.spawn(worker())
    with pytest.raises(SimulationError):
        sim.run()


def test_unsupported_yield_value_raises():
    sim = Simulator()

    def worker():
        yield "nonsense"

    sim.spawn(worker())
    with pytest.raises(SimulationError):
        sim.run()


def test_exception_in_process_propagates():
    sim = Simulator()

    def worker():
        yield 1.0
        raise ValueError("boom")

    sim.spawn(worker())
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_many_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def worker(i, period):
        for _ in range(3):
            yield period
            log.append((sim.now, i))

    sim.spawn(worker(0, us(2)))
    sim.spawn(worker(1, us(3)))
    sim.run()
    assert log == sorted(log, key=lambda x: x[0])
    assert len(log) == 6

"""Edge-case tests for DDS storage, samples and transports."""

import pytest

from repro.core.config import SpindleConfig
from repro.dds import (
    ClientTransport,
    DdsDomain,
    QosLevel,
    QosProfile,
    SsdLog,
    SsdModel,
    VolatileStore,
)
from repro.sim.units import gb_per_s, us


class TestVolatileStore:
    def test_unbounded_by_default(self):
        store = VolatileStore()
        for i in range(1000):
            store.store(i, b"x")
        assert len(store) == 1000

    def test_snapshot_is_a_copy(self):
        store = VolatileStore()
        store.store(0, b"a")
        snap = store.snapshot()
        store.store(1, b"b")
        assert snap == [(0, b"a")]

    def test_total_stored_counts_evictions(self):
        store = VolatileStore(history_depth=2)
        for i in range(5):
            store.store(i, b"x")
        assert len(store) == 2
        assert store.total_stored == 5


class TestSsdLog:
    def test_replay_filters_by_topic(self):
        log = SsdLog()
        log.append(1, 0, b"a")
        log.append(2, 1, b"b")
        log.append(1, 2, b"c")
        assert log.replay(1) == [(0, b"a"), (2, b"c")]
        assert log.replay(9) == []
        assert len(log) == 3
        assert log.total_bytes == 3

    def test_none_payload_counts_zero_bytes(self):
        log = SsdLog()
        log.append(0, 0, None)
        assert log.total_bytes == 0


class TestCustomTransport:
    def test_custom_transport_times(self):
        t = ClientTransport("sat-link", latency=us(500),
                            bandwidth=gb_per_s(0.01),
                            per_message_cpu=us(5))
        assert t.transfer_time(10_000) == pytest.approx(
            us(500) + 10_000 / 0.01e9)

    def test_slow_transport_end_to_end(self):
        from repro.dds import ExternalClient

        domain = DdsDomain(2, config=SpindleConfig.optimized())
        topic = domain.create_topic("t", publishers=[0], subscribers=[1],
                                    message_size=128, window=4)
        domain.build()
        reader = domain.participant(1).create_reader(topic)
        slow = ClientTransport("slow", latency=us(1000),
                               bandwidth=gb_per_s(0.001),
                               per_message_cpu=us(10))
        client = ExternalClient(domain, relay_node=0, transport=slow)
        domain.spawn(client.publisher(topic, [b"x" * 100]))
        domain.run_to_quiescence(max_time=60.0)
        assert reader.received == 1
        # The sample could not have arrived before the link latency.
        stats = domain.cluster.group(1).stats(domain.subgroup_of(topic))
        assert stats.first_delivery_time > us(1000)


class TestSampleMetadata:
    def test_sample_repr_and_fields(self):
        domain = DdsDomain(2, config=SpindleConfig.optimized())
        topic = domain.create_topic("alt", publishers=[0], subscribers=[1],
                                    message_size=64, window=4)
        domain.build()
        seen = []
        domain.participant(1).create_reader(topic, listener=seen.append)
        writer = domain.participant(0).create_writer(topic)

        def pub():
            yield from writer.write(b"hello")
            writer.finish()

        domain.spawn(pub())
        domain.run_to_quiescence()
        sample = seen[0]
        assert sample.publisher == 0
        assert sample.size == 5
        assert "alt" in repr(sample)

"""spindle-check tests: call graph, interprocedural lockset pass,
determinism pass, the check driver (baselines, suppressions, formats),
the runtime happens-before tracker, and the static/runtime cross-check.

The centerpiece is ``TestBothHalvesCatchSeededRace``: one seeded
unprotected-write race expressed twice — as source text for the static
lockset pass and as an executable simulation for the HB tracker — and
caught by both.
"""

import json
import textwrap

import pytest

from repro.analysis.lint.callgraph import (
    build_program,
    module_name_for,
)
from repro.analysis.lint.check import (
    check_paths,
    check_report_dict,
    check_report_sarif,
    check_sources,
    format_check_report,
)
from repro.analysis.lint.determinism import DeterminismPass
from repro.analysis.lint.findings import (
    format_baseline,
    load_baseline,
    parse_suppressions,
)
from repro.analysis.lint.hb import HBTracker
from repro.analysis.lint.lockset import LocksetPass
from repro.cli import main as cli_main
from repro.sim.engine import Simulator
from repro.sim.process import Process
from repro.sim.sync import Doorbell, Event, Lock


def src(text):
    return textwrap.dedent(text)


def program_of(*files):
    """Build a Program from (display_path, source) pairs."""
    return build_program([(path, src(body)) for path, body in files])


def lockset_findings(*files):
    return list(LocksetPass().run_program(program_of(*files)))


def determinism_findings(*files):
    return list(DeterminismPass().run_program(program_of(*files)))


# A non-exempt module path: repro.core.* is subject to guard inference.
CORE = "src/repro/core/fake_router.py"

#: The seeded race fixture: two writers agree on `lock` as the guard of
#: `pending`; a third writes it with an empty lockset.
RACY_SOURCE = """
class RouterState:
    def locked_writer(self):
        yield self.lock.acquire()
        self.pending = 1
        self.lock.release()

    def other_locked_writer(self):
        yield self.lock.acquire()
        self.pending = 2
        self.lock.release()

    def racy_writer(self):
        yield 0
        self.pending = 3
"""


# ==========================================================================
# Call graph
# ==========================================================================


class TestCallGraph:
    def test_module_name_for_strips_src_and_init(self):
        assert module_name_for("src/repro/shard/router.py") == \
            "repro.shard.router"
        assert module_name_for("src/repro/sim/__init__.py") == "repro.sim"
        assert module_name_for("tests/test_foo.py") == "tests.test_foo"

    def test_concurrency_roots_kinds(self):
        program = program_of(("src/repro/core/fake.py", """
            class FooPredicate:
                pass

            class MinePredicate(FooPredicate):
                def evaluate(self, sst):
                    return (0.0, 1)

                def trigger(self, value):
                    yield 0

            def worker():
                yield 1

            def plain_helper():
                return 2

            def on_write_cb(region, snap):
                return region

            def installer(node):
                node.on_remote_write.append(on_write_cb)
        """))
        roots = program.concurrency_roots()
        assert roots["repro.core.fake::MinePredicate.evaluate"] == "predicate"
        assert roots["repro.core.fake::MinePredicate.trigger"] == "predicate"
        assert roots["repro.core.fake::worker"] == "generator"
        assert roots["repro.core.fake::on_write_cb"] == "callback"
        assert "repro.core.fake::plain_helper" not in roots

    def test_reachable_follows_helper_calls(self):
        program = program_of(("src/repro/core/fake.py", """
            def worker():
                yield 0
                helper()

            def helper():
                leaf()

            def leaf():
                return 1

            def unrelated():
                return 2
        """))
        reach = program.reachable(program.concurrency_roots())
        assert "repro.core.fake::leaf" in reach
        assert "repro.core.fake::unrelated" not in reach


# ==========================================================================
# Lockset pass
# ==========================================================================


class TestLocksetPass:
    def test_unprotected_write_flagged(self):
        findings = lockset_findings((CORE, RACY_SOURCE))
        assert [f.rule for f in findings] == ["lockset-unprotected-write"]
        f = findings[0]
        assert "RouterState.pending" in f.message
        assert f.symbol == "RouterState.racy_writer"
        assert "{lock}" in f.message

    def test_all_writers_locked_is_clean(self):
        findings = lockset_findings((CORE, """
            class RouterState:
                def writer_a(self):
                    yield self.lock.acquire()
                    self.pending = 1
                    self.lock.release()

                def writer_b(self):
                    yield self.lock.acquire()
                    self.pending = 2
                    self.lock.release()
        """))
        assert findings == []

    def test_inconsistent_lock_flagged(self):
        findings = lockset_findings((CORE, """
            class Counters:
                def w1(self):
                    yield self.lock.acquire()
                    self.total = 1
                    self.lock.release()

                def w2(self):
                    yield self.lock.acquire()
                    self.total = 2
                    self.lock.release()

                def w3(self):
                    yield self.view_lock.acquire()
                    self.total = 3
                    self.view_lock.release()
        """))
        assert [f.rule for f in findings] == ["lockset-inconsistent"]
        assert findings[0].symbol == "Counters.w3"
        assert "{view_lock}" in findings[0].message
        assert "{lock}" in findings[0].message

    def test_single_locked_writer_not_enough_corroboration(self):
        # One incidental locked write proves no discipline: stays quiet.
        findings = lockset_findings((CORE, """
            class RouterState:
                def writer_a(self):
                    yield self.lock.acquire()
                    self.pending = 1
                    self.lock.release()

                def writer_b(self):
                    yield 0
                    self.pending = 2
        """))
        assert findings == []

    def test_exempt_module_skipped(self):
        path = "src/repro/sim/fake_kernel.py"
        assert lockset_findings((path, RACY_SOURCE)) == []

    def test_helper_inherits_callers_lockset(self):
        # The unlocked-looking write sits in a helper only ever called
        # with the lock held: entry-lockset propagation keeps it clean.
        findings = lockset_findings((CORE, """
            class RouterState:
                def writer_a(self):
                    yield self.lock.acquire()
                    self._store(1)
                    self.lock.release()

                def writer_b(self):
                    yield self.lock.acquire()
                    self._store(2)
                    self.lock.release()

                def _store(self, value):
                    self.pending = value
        """))
        assert findings == []

    def test_container_mutation_counts_as_write(self):
        findings = lockset_findings((CORE, """
            class RouterState:
                def writer_a(self):
                    yield self.lock.acquire()
                    self.queue.append(1)
                    self.lock.release()

                def writer_b(self):
                    yield self.lock.acquire()
                    self.queue.append(2)
                    self.lock.release()

                def racy(self):
                    yield 0
                    self.queue.append(3)
        """))
        assert [f.rule for f in findings] == ["lockset-unprotected-write"]
        assert "RouterState.queue" in findings[0].message


# ==========================================================================
# Determinism pass
# ==========================================================================


class TestDeterminismPass:
    def test_wall_clock_flagged(self):
        findings = determinism_findings((CORE, """
            import time

            def handler():
                yield 0
                stamp = time.time()
                return stamp
        """))
        assert "nondet-wall-clock" in [f.rule for f in findings]

    def test_unseeded_random_flagged(self):
        findings = determinism_findings((CORE, """
            import random

            def handler():
                yield 0
                return random.random()
        """))
        assert "nondet-unseeded-random" in [f.rule for f in findings]

    def test_id_keyed_dict_flagged(self):
        findings = determinism_findings((CORE, """
            def handler(items):
                yield 0
                table = {}
                for item in items:
                    table[id(item)] = item
                return table
        """))
        assert "nondet-id-order" in [f.rule for f in findings]

    def test_set_iteration_flagged(self):
        findings = determinism_findings((CORE, """
            def handler(items):
                yield 0
                pending = set(items)
                for item in pending:
                    deliver(item)

            def deliver(item):
                return item
        """))
        assert "nondet-set-iteration" in [f.rule for f in findings]

    def test_unreachable_code_out_of_scope(self):
        # Same wall-clock read, but nothing concurrent can reach it.
        findings = determinism_findings((CORE, """
            import time

            def cli_helper():
                return time.time()
        """))
        assert findings == []


# ==========================================================================
# The check driver
# ==========================================================================


class TestCheckDriver:
    def test_clean_sources_report_ok(self):
        report = check_sources([("src/repro/core/ok.py", src("""
            class Quiet:
                def writer_a(self):
                    yield self.lock.acquire()
                    self.pending = 1
                    self.lock.release()
        """))])
        assert report.ok
        assert report.findings == []
        assert report.modules_analyzed == 1

    def test_finding_surfaces_and_fails(self):
        report = check_sources([(CORE, src(RACY_SOURCE))])
        assert not report.ok
        assert [f.rule for f in report.findings] == \
            ["lockset-unprotected-write"]

    def test_baseline_filters_known_finding(self):
        raw = check_sources([(CORE, src(RACY_SOURCE))])
        fingerprints = {f.fingerprint for f in raw.findings}
        report = check_sources([(CORE, src(RACY_SOURCE))],
                               baseline=fingerprints)
        assert report.ok
        assert [f.fingerprint for f in report.baselined] == \
            sorted(fingerprints)
        assert report.stale_baseline == []

    def test_stale_baseline_entry_reported(self):
        stale = "src/gone.py::Gone.method::lockset-unprotected-write"
        report = check_sources([(CORE, src(RACY_SOURCE))],
                               baseline={stale})
        assert report.stale_baseline == [stale]
        assert "stale baseline entry" in format_check_report(report)
        # stale entries warn; they do not flip ok on their own
        clean = check_sources([("src/repro/core/ok.py", "x = 1\n")],
                              baseline={stale})
        assert clean.ok and clean.stale_baseline == [stale]

    def test_inline_suppression_honored(self):
        suppressed = RACY_SOURCE.replace(
            "self.pending = 3",
            "self.pending = 3  # spindle-lint: allow["
            "lockset-unprotected-write]")
        report = check_sources([(CORE, src(suppressed))])
        assert report.ok
        assert report.suppressed == 1

    def test_select_single_pass(self):
        source = src("""
            import time

            class RouterState:
                def locked_writer(self):
                    yield self.lock.acquire()
                    self.pending = 1
                    self.lock.release()

                def other_locked_writer(self):
                    yield self.lock.acquire()
                    self.pending = 2
                    self.lock.release()

                def racy_writer(self):
                    yield 0
                    self.pending = 3
                    self.stamp = time.time()
                    self.stamp = time.time()
        """)
        both = check_sources([(CORE, source)])
        rules = {f.rule for f in both.findings}
        assert "lockset-unprotected-write" in rules
        assert "nondet-wall-clock" in rules
        only = check_sources([(CORE, source)], select=["determinism"])
        assert {f.rule for f in only.findings} == {"nondet-wall-clock"}

    def test_no_lint_skips_per_file_passes(self):
        source = src("""
            def handler():
                yield 0
                try:
                    risky()
                except:
                    pass

            def risky():
                return 1
        """)
        with_lint = check_sources([(CORE, source)])
        assert "bare-except" in {f.rule for f in with_lint.findings}
        without = check_sources([(CORE, source)], include_lint=False)
        assert "bare-except" not in {f.rule for f in without.findings}

    def test_syntax_error_reported_either_way(self):
        report = check_sources([(CORE, "def broken(:\n")])
        assert report.errors and not report.ok
        report = check_sources([(CORE, "def broken(:\n")],
                               include_lint=False)
        assert report.errors and not report.ok

    def test_json_and_sarif_shapes(self):
        report = check_sources([(CORE, src(RACY_SOURCE))])
        payload = check_report_dict(report)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "lockset-unprotected-write"
        assert payload["findings"][0]["fingerprint"].count("::") == 2
        json.dumps(payload)  # must be serializable

        sarif = check_report_sarif(report)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["tool"]["driver"]["name"] == "spindle-check"
        result = run["results"][0]
        assert result["ruleId"] == "lockset-unprotected-write"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1
        assert result["partialFingerprints"]["spindleCheck/v1"] == \
            report.findings[0].fingerprint
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "lockset-unprotected-write" in rule_ids
        json.dumps(sarif)

    def test_check_paths_and_cli(self, tmp_path, capsys):
        target = tmp_path / "racy.py"
        target.write_text(src(RACY_SOURCE))
        report = check_paths([str(target)], root=str(tmp_path))
        assert [f.rule for f in report.findings] == \
            ["lockset-unprotected-write"]
        assert report.findings[0].path == "racy.py"

        rc = cli_main(["check", str(target), "--no-baseline"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "lockset-unprotected-write" in out

        baseline = tmp_path / ".spindle-check-baseline"
        rc = cli_main(["check", str(target), "--write-baseline",
                       "--baseline", str(baseline)])
        assert rc == 0
        capsys.readouterr()
        rc = cli_main(["check", str(target), "--baseline", str(baseline)])
        assert rc == 0
        capsys.readouterr()

        rc = cli_main(["check", str(target), "--no-baseline",
                       "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False

    def test_cli_rejects_missing_path(self, tmp_path, capsys):
        rc = cli_main(["check", str(tmp_path / "nope"), "--no-baseline"])
        assert rc == 2
        assert "error" in capsys.readouterr().err


# ==========================================================================
# findings.py edge cases (suppressions + baseline machinery)
# ==========================================================================


class TestSuppressionAndBaselineEdgeCases:
    def test_multi_rule_suppression_on_one_line(self):
        supp = parse_suppressions([
            "x = 1  # spindle-lint: allow[rule-a, rule-b,rule-c]",
        ])
        assert supp[1] == {"rule-a", "rule-b", "rule-c"}

    def test_comment_only_line_covers_next_line(self):
        supp = parse_suppressions([
            "# spindle-lint: allow[rule-a]",
            "x = 1",
        ])
        assert supp[1] == {"rule-a"}
        assert supp[2] == {"rule-a"}

    def test_trailing_suppression_does_not_leak_down(self):
        supp = parse_suppressions(["x = 1  # spindle-lint: allow[rule-a]"])
        assert 2 not in supp

    def test_stacked_suppressions_accumulate(self):
        supp = parse_suppressions([
            "# spindle-lint: allow[rule-a]",
            "y = 2  # spindle-lint: allow[rule-b]",
        ])
        assert supp[2] == {"rule-a", "rule-b"}

    def test_load_baseline_ignores_comments_and_blanks(self):
        text = ("# header\n\n  \n"
                "a.py::C.m::rule-a\n"
                "  b.py::D.n::rule-b  \n"
                "# trailing comment\n")
        assert load_baseline(text) == {"a.py::C.m::rule-a",
                                       "b.py::D.n::rule-b"}

    def test_format_baseline_round_trips_and_dedups(self):
        findings = check_sources([(CORE, src(RACY_SOURCE))]).findings
        body = format_baseline(findings + findings)
        loaded = load_baseline(body)
        assert loaded == {f.fingerprint for f in findings}


# ==========================================================================
# Runtime happens-before tracker
# ==========================================================================

_HOOKS = [
    (Simulator, "hb_hook", "_sched_hook"),
    (Simulator, "hb_run_hook", "_run_hook"),
    (Lock, "hb_hook", "_lock_hook"),
    (Event, "hb_hook", "_event_hook"),
    (Doorbell, "hb_hook", "_doorbell_hook"),
    (Process, "hb_hook", "_process_hook"),
]


@pytest.fixture
def tracker():
    """A locally-installed HBTracker (kernel hooks only, no SST/NIC).

    Saves and restores any previously installed hooks, so these tests
    behave identically with and without the session-wide SPINDLE_HB=1
    tracker — races seeded here never leak into the session tracker.
    """
    t = HBTracker()
    saved = [(cls, name, getattr(cls, name)) for cls, name, _ in _HOOKS]
    for cls, name, method in _HOOKS:
        setattr(cls, name, staticmethod(getattr(t, method)))
    try:
        yield t
    finally:
        for cls, name, prev in saved:
            setattr(cls, name, staticmethod(prev) if prev is not None
                    else None)


class _Shared:
    def __init__(self):
        self.pending = 0


def _writer(obj, value, lock=None, delay=1e-6):
    yield delay
    if lock is not None:
        yield lock.acquire()
    obj.pending = value
    if lock is not None:
        lock.release()


class TestHBTracker:
    def test_unlocked_concurrent_writes_race(self, tracker):
        sim = Simulator()
        obj = tracker.watch_object(_Shared(), attrs=("pending",),
                                   label="RouterState", sim=sim)
        sim.spawn(_writer(obj, 1), name="a")
        sim.spawn(_writer(obj, 2), name="b")
        sim.run()
        races = tracker.unexplained_races()
        assert len(races) == 1
        assert races[0].attr == "pending"
        assert "RouterState" in races[0].label

    def test_same_lock_orders_the_writes(self, tracker):
        sim = Simulator()
        lock = Lock(sim, name="lock")
        obj = tracker.watch_object(_Shared(), attrs=("pending",),
                                   label="RouterState", sim=sim)
        sim.spawn(_writer(obj, 1, lock), name="a")
        sim.spawn(_writer(obj, 2, lock), name="b")
        sim.run()
        assert tracker.unexplained_races() == []
        assert tracker.accesses_recorded == 2

    def test_event_trigger_orders_waiter_after_signaller(self, tracker):
        sim = Simulator()
        done = Event(sim, name="done")
        obj = tracker.watch_object(_Shared(), attrs=("pending",),
                                   label="RouterState", sim=sim)

        def producer():
            yield 1e-6
            obj.pending = 1
            done.trigger(None)

        def consumer():
            yield done
            obj.pending = 2

        sim.spawn(producer(), name="producer")
        sim.spawn(consumer(), name="consumer")
        sim.run()
        assert tracker.unexplained_races() == []

    def test_killed_process_ordered_before_killer(self, tracker):
        sim = Simulator()
        obj = tracker.watch_object(_Shared(), attrs=("pending",),
                                   label="RouterState", sim=sim)

        def victim_loop():
            yield 1e-6
            obj.pending = 1
            yield 100.0  # parked until killed mid-run

        victim = sim.spawn(victim_loop(), name="victim")

        def killer():
            yield 5e-6
            victim.kill()
            obj.pending = 2

        sim.spawn(killer(), name="killer")
        sim.run()
        assert tracker.unexplained_races() == []

    def test_explain_marks_race_benign(self, tracker):
        sim = Simulator()
        obj = tracker.watch_object(_Shared(), attrs=("pending",),
                                   label="RouterState", sim=sim)
        sim.spawn(_writer(obj, 1), name="a")
        sim.spawn(_writer(obj, 2), name="b")
        sim.run()
        assert len(tracker.unexplained_races()) == 1
        tracker.explain("RouterState", "pending",
                        "test fixture: writes are idempotent")
        assert tracker.unexplained_races() == []
        assert len(tracker.races) == 1  # still recorded
        assert "1 race(s) (0 unexplained)" in tracker.report()

    def test_reset_clears_state_keeps_explanations(self, tracker):
        sim = Simulator()
        obj = tracker.watch_object(_Shared(), attrs=("pending",),
                                   label="RouterState", sim=sim)
        sim.spawn(_writer(obj, 1), name="a")
        sim.spawn(_writer(obj, 2), name="b")
        sim.run()
        tracker.explain("RouterState", "pending", "benign fixture")
        tracker.reset()
        assert tracker.races == []
        sim2 = Simulator()
        obj2 = tracker.watch_object(_Shared(), attrs=("pending",),
                                    label="RouterState", sim=sim2)
        sim2.spawn(_writer(obj2, 1), name="a")
        sim2.spawn(_writer(obj2, 2), name="b")
        sim2.run()
        # the race recurs but the surviving explanation covers it
        assert tracker.races and tracker.unexplained_races() == []


# ==========================================================================
# The acceptance criterion: one seeded race, caught by BOTH halves
# ==========================================================================


class TestBothHalvesCatchSeededRace:
    def test_static_and_runtime_agree_and_cross_check(self, tracker):
        # Static half: the lockset pass flags the unlocked writer.
        static = check_sources([(CORE, src(RACY_SOURCE))]).findings
        assert [f.rule for f in static] == ["lockset-unprotected-write"]

        # Runtime half: the same shape executed — two writers under the
        # lock, one bare — produces exactly one dynamic race.
        sim = Simulator()
        lock = Lock(sim, name="lock")
        obj = tracker.watch_object(_Shared(), attrs=("pending",),
                                   label="RouterState", sim=sim)
        sim.spawn(_writer(obj, 1, lock), name="locked_writer")
        sim.spawn(_writer(obj, 2, lock), name="other_locked_writer")
        sim.spawn(_writer(obj, 3), name="racy_writer")
        sim.run()
        races = tracker.unexplained_races()
        assert len(races) >= 1
        assert all(r.attr == "pending" for r in races)

        # Cross-check joins the two: the race corroborates the finding.
        verdict = tracker.cross_check(static)
        assert verdict["corroborated"], verdict
        race, hits = verdict["corroborated"][0]
        assert race.attr == "pending"
        assert hits[0].rule == "lockset-unprotected-write"
        assert verdict["static_only"] == []

    def test_fixed_version_clean_in_both_halves(self, tracker):
        fixed_source = RACY_SOURCE.replace(
            """\
    def racy_writer(self):
        yield 0
        self.pending = 3
""",
            """\
    def racy_writer(self):
        yield 0
        yield self.lock.acquire()
        self.pending = 3
        self.lock.release()
""")
        assert "acquire" in fixed_source.split("racy_writer")[1]
        assert check_sources([(CORE, src(fixed_source))]).ok

        sim = Simulator()
        lock = Lock(sim, name="lock")
        obj = tracker.watch_object(_Shared(), attrs=("pending",),
                                   label="RouterState", sim=sim)
        for i, name in enumerate(["locked_writer", "other_locked_writer",
                                  "racy_writer"]):
            sim.spawn(_writer(obj, i, lock), name=name)
        sim.run()
        assert tracker.unexplained_races() == []
        assert tracker.cross_check([])["runtime_only"] == []

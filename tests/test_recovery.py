"""Tests for the crash-recovery & rejoin plane (docs/RECOVERY.md):

* ragged-edge trim as an auditable artifact (compute_trim, TrimLedger);
* the chunked state-transfer protocol (codec, per-chunk timeout +
  exponential backoff, injected loss, source failover, CRC validation);
* PersistenceEngine.adopt_log / drained and the Cluster durable store;
* Cluster crash/restart bookkeeping (fail_node, restart_node,
  live_nodes) and CrashEvent.restart_at end-to-end;
* the RecoveryCoordinator pipeline via the chaos scenarios, and the
  cross-view virtual-synchrony verifier.
"""

import pytest

from repro.core.config import SpindleConfig
from repro.faults import FaultSchedule
from repro.rdma.fabric import RdmaFabric
from repro.recovery import (
    RecoveryConfig,
    StateTransfer,
    TransferConfig,
    TrimLedger,
    VsyncVerifier,
    compute_trim,
    decode_entries,
    encode_entries,
)
from repro.sim.engine import Simulator
from repro.sim.units import ms, us
from repro.workloads import Cluster, continuous_sender


# ==========================================================================
# Ragged-edge trim
# ==========================================================================


class TestComputeTrim:
    def _received(self, table):
        return lambda node, sg_id: table[sg_id][node]

    def test_minimum_over_survivors(self):
        table = {0: {0: 10, 1: 7, 2: 9}}
        d = compute_trim(prior_view_id=0, next_view_id=1, leader=0,
                         failed=(), subgroup_members={0: [0, 1, 2]},
                         received_of=self._received(table))
        assert d.trims == {0: 7}
        assert d.survivor_received == {0: {0: 10, 1: 7, 2: 9}}

    def test_failed_members_excluded(self):
        table = {0: {0: 10, 1: 2, 2: 9}}
        d = compute_trim(prior_view_id=0, next_view_id=1, leader=0,
                         failed=(1,), subgroup_members={0: [0, 1, 2]},
                         received_of=self._received(table))
        assert d.trims == {0: 9}
        assert 1 not in d.survivor_received[0]
        assert d.failed == (1,)

    def test_per_subgroup_and_tuple_form(self):
        table = {0: {0: 5, 1: 3}, 1: {0: 8, 1: 11}}
        d = compute_trim(prior_view_id=2, next_view_id=3, leader=1,
                         failed=(), subgroup_members={0: [0, 1], 1: [0, 1]},
                         received_of=self._received(table),
                         joined=(4,), kind="join")
        assert d.trims == {0: 3, 1: 8}
        assert d.trims_tuple() == ((0, 3), (1, 8))
        assert d.kind == "join" and d.joined == (4,)

    def test_subgroup_with_no_survivors_skipped(self):
        table = {0: {0: 5}}
        d = compute_trim(prior_view_id=0, next_view_id=1, leader=0,
                         failed=(0,), subgroup_members={0: [0]},
                         received_of=self._received(table))
        assert d.trims == {}


class TestTrimLedger:
    def _decision(self, trims, next_view_id=1):
        return compute_trim(
            prior_view_id=next_view_id - 1, next_view_id=next_view_id,
            leader=0, failed=(), subgroup_members={sg: [0] for sg in trims},
            received_of=lambda n, sg: trims[sg])

    def test_first_commit_pins_matching_proposal(self):
        ledger = TrimLedger()
        decision = self._decision({0: 7})
        ledger.propose(decision)
        ledger.commit(1, decision.trims_tuple(), committer=0)
        assert ledger.decision_for(1) is decision
        assert ledger.committers[1] == [0]
        assert not ledger.conflicts

    def test_identical_commits_agree(self):
        ledger = TrimLedger()
        decision = self._decision({0: 7})
        ledger.propose(decision)
        for node in (0, 1, 2):
            ledger.commit(1, decision.trims_tuple(), committer=node)
        assert ledger.committers[1] == [0, 1, 2]
        assert not ledger.conflicts

    def test_divergent_commit_is_a_conflict(self):
        ledger = TrimLedger()
        decision = self._decision({0: 7})
        ledger.propose(decision)
        ledger.commit(1, decision.trims_tuple(), committer=0)
        ledger.commit(1, ((0, 9),), committer=2)
        assert len(ledger.conflicts) == 1
        assert "node 2" in ledger.conflicts[0]

    def test_commit_without_proposal_synthesizes(self):
        ledger = TrimLedger()
        ledger.commit(5, ((0, 3),), committer=1)
        pinned = ledger.decision_for(5)
        assert pinned is not None and pinned.trims == {0: 3}
        assert pinned.prior_view_id == 4

    def test_record_join_and_decision_ending(self):
        ledger = TrimLedger()
        join = compute_trim(prior_view_id=1, next_view_id=2, leader=0,
                            failed=(), subgroup_members={0: [0, 1]},
                            received_of=lambda n, sg: 4,
                            joined=(3,), kind="join")
        ledger.record_join(join)
        assert ledger.decision_for(2) is join
        assert ledger.decision_ending(1) is join
        assert ledger.decision_ending(0) is None


# ==========================================================================
# State-transfer codec
# ==========================================================================


class TestEntryCodec:
    def test_round_trip(self):
        entries = [(0, 1, b"hello"), (1, 2, b""), (2, 0, None),
                   (3, 3, b"\x00" * 100)]
        assert decode_entries(encode_entries(entries)) == entries

    def test_empty(self):
        assert decode_entries(encode_entries([])) == []

    def test_truncated_header_raises(self):
        blob = encode_entries([(0, 1, b"abc")])
        with pytest.raises(ValueError):
            decode_entries(blob[:-5])  # cuts into the payload

    def test_truncated_payload_raises(self):
        blob = encode_entries([(0, 1, b"abcdef")])
        with pytest.raises(ValueError):
            decode_entries(blob[: len(blob) - 2])


# ==========================================================================
# StateTransfer protocol
# ==========================================================================


def run_transfer(payloads, *, config, kill_at=None, n_sources=2,
                 dead_sources=()):
    """Drive one StateTransfer on a bare fabric; returns the outcome.

    ``payloads`` maps source index -> bytes (or None = unusable source).
    ``kill_at`` optionally crash-stops source 0 at that time.
    """
    sim = Simulator(seed=1)
    fabric = RdmaFabric(sim)
    sources = [fabric.add_node().node_id for _ in range(n_sources)]
    dest = fabric.add_node().node_id
    for idx in dead_sources:
        fabric.fail_node(sources[idx])
    if kill_at is not None:
        sim.call_at(kill_at, fabric.fail_node, sources[0])

    st = StateTransfer(sim, fabric, dest=dest, sources=sources,
                       fetch_payload=lambda src: payloads.get(
                           sources.index(src)),
                       config=config)
    box = {}

    def proc():
        box["out"] = yield from st.run()

    sim.spawn(proc())
    sim.run()
    return box["out"]


class TestStateTransfer:
    def test_happy_path_multi_chunk(self):
        payload = bytes(range(256)) * 10  # 2560 B -> 10 chunks of 256
        out = run_transfer({0: payload, 1: payload},
                           config=TransferConfig(chunk_size=256))
        assert out.ok and out.data == payload
        assert out.chunks == 10
        assert out.source is not None
        assert out.failovers == 0 and out.timeouts == 0
        assert out.checksum_ok

    def test_injected_drop_forces_timeout_and_backoff(self):
        payload = b"x" * 1000
        out = run_transfer(
            {0: payload, 1: payload},
            config=TransferConfig(chunk_size=256, chunk_timeout=us(100),
                                  drop_chunks=frozenset({1})))
        assert out.ok and out.data == payload
        assert out.injected_timeouts == 1
        assert out.timeouts >= 1
        assert out.backoff_total > 0.0
        assert out.attempts > out.chunks  # at least one retransmit

    def test_dead_source_skipped(self):
        payload = b"y" * 512
        out = run_transfer({0: payload, 1: payload},
                           config=TransferConfig(chunk_size=256),
                           dead_sources=(0,))
        assert out.ok
        assert out.sources_used == [out.source]
        assert out.failovers == 0  # never *started* on the dead one

    def test_unusable_payload_advances_failover(self):
        payload = b"z" * 512
        out = run_transfer({0: None, 1: payload},
                           config=TransferConfig(chunk_size=256))
        assert out.ok and out.data == payload
        assert len(out.sources_used) == 2
        assert out.failovers == 1

    def test_source_crash_mid_transfer_fails_over(self):
        payload = b"q" * 4096  # 16 chunks
        cfg = TransferConfig(chunk_size=256, chunk_timeout=us(100),
                             inter_chunk_gap=us(50))
        out = run_transfer({0: payload, 1: payload}, config=cfg,
                           kill_at=us(300))
        assert out.ok and out.data == payload
        assert out.failovers >= 1
        assert len(out.sources_used) >= 2
        assert out.source != out.sources_used[0]

    def test_no_live_source_fails(self):
        out = run_transfer({0: b"a", 1: b"a"},
                           config=TransferConfig(chunk_size=256),
                           dead_sources=(0, 1))
        assert not out.ok
        assert out.error is not None

    def test_empty_payload_is_one_chunk(self):
        out = run_transfer({0: b"", 1: b""},
                           config=TransferConfig(chunk_size=256))
        assert out.ok and out.data == b""
        assert out.chunks == 1


# ==========================================================================
# Persistence: adopt_log / drained + cluster durable store
# ==========================================================================


def persistent_cluster(n=3, count=20, size=512, seed=0, membership=None):
    cluster = Cluster(n, config=SpindleConfig.optimized(), seed=seed)
    cluster.add_subgroup(message_size=size, window=8, persistent=True)
    if membership:
        cluster.enable_membership(**membership)
    cluster.build()
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=size,
            payload_fn=lambda k, nid=nid: b"%d:%d" % (nid, k)))
    return cluster


class TestAdoptLog:
    def test_adopt_seeds_pristine_engine(self):
        cluster = persistent_cluster(n=2, count=0)
        engine = cluster.group(0).persistence[0]
        entries = [(0, 0, b"aa"), (1, 1, b"bbb"), (2, 0, None)]
        # A freshly built engine has nothing queued or logged yet only
        # if no traffic ran; use a second, unstarted cluster instead.
        fresh = Cluster(2, config=SpindleConfig.optimized())
        fresh.add_subgroup(message_size=64, window=4, persistent=True)
        fresh.build()
        engine = fresh.group(0).persistence[0]
        engine.adopt_log(entries)
        assert engine.log == [(0, 0, b"aa"), (1, 1, b"bbb"), (2, 0, None)]
        assert engine.log_bytes == 5
        assert engine.adopted_entries == 3
        assert engine.drained

    def test_adopt_on_nonpristine_engine_raises(self):
        cluster = persistent_cluster(n=2, count=10)
        cluster.run_to_quiescence(max_time=10.0)
        engine = cluster.group(0).persistence[0]
        assert engine.log  # traffic was persisted
        with pytest.raises(RuntimeError):
            engine.adopt_log([(0, 0, b"x")])

    def test_durable_log_survives_view_change(self):
        cluster = persistent_cluster(
            n=3, count=25, membership=dict(heartbeat_period=us(100),
                                           suspicion_timeout=us(500)))
        cluster.run(until=ms(20))  # heartbeats never quiesce
        before, before_bytes = cluster.durable_log(0, 0)
        assert before and before_bytes > 0
        # Epoch restart: the new engines must adopt the harvested logs.
        new_view = cluster.view.without([2])
        cluster.install_view(new_view)
        engine = cluster.group(0).persistence[0]
        assert engine.adopted_entries == len(before)
        assert engine.log[: len(before)] == before
        # The store also answers for the departed member.
        departed, _ = cluster.durable_log(2, 0)
        assert departed

    def test_adopt_durable_log_roundtrip(self):
        cluster = persistent_cluster(n=2, count=0)
        entries = [(0, 1, b"zz"), (1, 0, None)]
        cluster.adopt_durable_log(7, 0, entries)
        got, nbytes = cluster.durable_log(7, 0)
        assert got == entries and nbytes == 2


# ==========================================================================
# Crash / restart bookkeeping
# ==========================================================================


class TestCrashRestartBookkeeping:
    def test_fail_node_updates_live_nodes(self):
        cluster = persistent_cluster(n=3, count=0)
        assert cluster.live_nodes() == [0, 1, 2]
        cluster.fail_node(1)
        assert cluster.live_nodes() == [0, 2]
        assert 1 in cluster.dead_nodes
        assert not cluster.fabric.nodes[1].alive

    def test_restart_node_revives(self):
        cluster = persistent_cluster(n=3, count=0)
        cluster.fail_node(1)
        cluster.restart_node(1)
        assert cluster.live_nodes() == [0, 1, 2]
        assert cluster.fabric.nodes[1].alive
        assert 1 not in cluster.dead_nodes

    def test_restart_at_fires_callbacks_and_counters(self):
        cluster = persistent_cluster(
            n=3, count=30, membership=dict(heartbeat_period=us(100),
                                           suspicion_timeout=us(500)))
        restarted = []
        cluster.faults.on_restart.append(restarted.append)
        cluster.faults.crash(2, at=ms(1), restart_at=ms(15))
        cluster.run(until=ms(25))
        assert cluster.faults.crashes == 1
        assert cluster.faults.restarts == 1
        assert restarted == [2]
        assert cluster.fabric.nodes[2].alive
        assert cluster.live_nodes() == [0, 1, 2]

    def test_restart_replay_matches_imperative_run(self):
        def run(schedule_json=None):
            cluster = persistent_cluster(
                n=3, count=30, seed=4,
                membership=dict(heartbeat_period=us(100),
                                suspicion_timeout=us(500)))
            seen = []
            cluster.faults.on_restart.append(seen.append)
            if schedule_json is None:
                cluster.faults.crash(2, at=ms(1), restart_at=ms(10))
            else:
                cluster.faults.apply(FaultSchedule.from_json(schedule_json))
            cluster.run(until=ms(20))
            log = cluster.group(0).persistence[0].log
            return cluster, seen, list(log)

        cluster, seen, log = run()
        schedule_json = cluster.faults.schedule.to_json()
        replay, seen2, log2 = run(schedule_json)
        assert seen2 == seen == [2]
        assert log2 == log
        assert replay.faults.counters() == cluster.faults.counters()


# ==========================================================================
# End-to-end: scenarios + coordinator + verifier
# ==========================================================================


class TestRecoveryScenarios:
    def test_crash_restart_rejoin_scenario(self):
        from repro.faults.scenarios import run_scenario

        result = run_scenario("crash-restart-rejoin", seed=0)
        assert result.ok, result.problems

    def test_mid_transfer_source_crash_scenario(self):
        from repro.faults.scenarios import run_scenario

        result = run_scenario("mid-transfer-source-crash", seed=0)
        assert result.ok, result.problems

    def test_coordinator_report_contents(self):
        """The full pipeline (wait-view → replay → transfer → rejoin)
        run directly against a cluster, asserting each audit field."""
        from repro.apps.kvstore import attach_store

        cluster = Cluster(4, config=SpindleConfig.optimized(), seed=0)
        cluster.add_subgroup(message_size=256, window=8, persistent=True)
        cluster.enable_membership(heartbeat_period=us(100),
                                  suspicion_timeout=us(500))
        cluster.build()
        stores = {nid: attach_store(cluster.group(nid), 0)
                  for nid in cluster.node_ids}

        def rewire(view):
            for nid, group in cluster.groups.items():
                store = stores.get(nid)
                if store is None:
                    stores[nid] = store = attach_store(group, 0)
                else:
                    store.rebind(group.subgroup(0))
                    group.on_delivery(0, store.apply)

        cluster.on_view_installed.append(rewire)

        def writers(view):
            for nid in cluster.groups:
                def writer(store=stores[nid], vid=view.view_id, nid=nid):
                    try:
                        for i in range(10):
                            yield from store.put(
                                b"k%d.%d.%d" % (vid, nid, i), b"v" * 16)
                            yield us(40)
                    except RuntimeError:
                        return
                cluster.spawn_sender(writer())

        cluster.on_view_installed.append(writers)
        writers(cluster.view)

        coord = cluster.enable_recovery(RecoveryConfig(
            transfer=TransferConfig(chunk_size=256, chunk_timeout=us(300),
                                    drop_chunks=frozenset({0}))))

        def rebuild(node, entries):
            stores[node].data.clear()
            for _seq, _sender, payload in entries:
                stores[node].apply_command(payload)

        coord.set_applier(0, rebuild)
        coord.set_checksum(0, lambda nid: stores[nid].checksum())
        verifier = VsyncVerifier(cluster)

        rejoined = []
        coord.on_rejoined.append(lambda n, v: rejoined.append((n, v.view_id)))
        cluster.faults.crash(3, at=ms(1), restart_at=ms(8))
        cluster.run(until=ms(30))

        report = coord.reports[3]
        assert report.done, report.problems
        assert report.rejoin_view_id >= 2
        assert set(report.stage_seconds) == {
            "wait-view", "replay", "transfer", "rejoin"}
        assert report.replayed[0] > 0
        assert report.fetched[0] > 0
        xfer = report.transfers[0]
        assert xfer.ok and xfer.injected_timeouts >= 1
        assert xfer.backoff_total > 0.0
        assert report.checksum_ok[0] is True
        assert rejoined == [(3, report.rejoin_view_id)]
        assert cluster.view.members == (0, 1, 2, 3)
        # Rejoiner's state machine replayed the durable log.
        assert stores[3].recovered > 0
        # Everyone converged.
        sums = {stores[n].checksum() for n in cluster.node_ids}
        assert len(sums) == 1
        # The ledger holds both the failure trim and the join trim.
        kinds = [d.kind for d in cluster.trim_ledger.committed.values()]
        assert "failure" in kinds and "join" in kinds
        # And the verifier signs off across all epochs.
        vs = verifier.check()
        assert vs.ok, vs.violations
        assert vs.epochs_checked >= 3

    def test_recovery_metrics_counters(self):
        from repro.faults.scenarios import SCENARIOS  # noqa: F401 (import check)

        cluster = Cluster(3, config=SpindleConfig.optimized(), seed=1)
        cluster.add_subgroup(message_size=256, window=8, persistent=True)
        cluster.enable_membership(heartbeat_period=us(100),
                                  suspicion_timeout=us(500))
        cluster.build()
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=15, size=256))

        # Fresh senders per installed view, so the crashed node misses
        # traffic and the transfer has a real delta to move.
        def more(_view):
            for nid in cluster.groups:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(nid, 0), count=10, size=256))

        cluster.on_view_installed.append(more)
        cluster.enable_recovery()
        cluster.faults.crash(2, at=ms(1), restart_at=ms(8))
        cluster.run(until=ms(30))
        snap = cluster.metrics_snapshot()["metrics"]

        def value(name):
            return sum(s["value"] for k, s in snap.items()
                       if k.startswith(name))

        assert value("spindle_recovery_started_total") == 1
        assert value("spindle_recovery_completed_total") == 1
        assert value("spindle_recovery_failed_total") == 0
        assert value("spindle_recovery_transfer_bytes_total") > 0

    def test_recovery_without_membership_fails_cleanly(self):
        """No failure detector -> the old view never excises the node;
        the pipeline must give up with a wait-view diagnosis instead of
        hanging."""
        cluster = Cluster(3, config=SpindleConfig.optimized(), seed=0)
        cluster.add_subgroup(message_size=256, window=8, persistent=True)
        cluster.build()
        coord = cluster.enable_recovery(RecoveryConfig(
            view_wait_timeout=ms(5)))
        cluster.faults.crash(2, at=ms(1), restart_at=ms(2))
        cluster.run(until=ms(20))
        report = coord.reports[2]
        assert report.state == "failed"
        assert any("view still contains" in p for p in report.problems)


class TestAppRecoveryHooks:
    """The per-app recovery surface: deterministic snapshot/restore and
    checksum hooks used by the coordinator's state validation."""

    def _queue_pair(self):
        from repro.apps.mqueue import attach_queue

        cluster = Cluster(2, config=SpindleConfig.optimized(), seed=0)
        cluster.add_subgroup(message_size=128, window=8)
        cluster.build()
        queues = {nid: attach_queue(cluster.group(nid), 0, num_workers=2)
                  for nid in cluster.node_ids}

        def producer(q):
            for i in range(6):
                yield from q.enqueue(b"job-%d" % i)

        for nid in cluster.node_ids:
            cluster.spawn_sender(producer(queues[nid]))
        cluster.run_to_quiescence(max_time=10.0)
        return cluster, queues

    def test_mqueue_checksum_matches_across_replicas(self):
        _cluster, queues = self._queue_pair()
        sums = {q.checksum() for q in queues.values()}
        assert len(sums) == 1
        assert queues[0].backlog() == 12

    def test_mqueue_checksum_tracks_takes(self):
        _cluster, queues = self._queue_pair()
        before = queues[0].checksum()
        queues[0].take(0, limit=3)
        assert queues[0].checksum() != before
        queues[1].take(0, limit=3)
        assert queues[0].checksum() == queues[1].checksum()

    def test_mqueue_snapshot_restore_roundtrip(self):
        from repro.apps.mqueue import ReplicatedQueue

        _cluster, queues = self._queue_pair()
        queues[0].take(1, limit=2)
        blob = queues[0].snapshot()
        clone = ReplicatedQueue.__new__(ReplicatedQueue)
        clone.num_workers = 2
        clone.restore(blob)
        assert clone.enqueued_total == queues[0].enqueued_total
        assert clone.taken_total == queues[0].taken_total
        # restore() fills _pending; checksum over the restored state
        # matches the original byte-for-byte.
        clone.checksum = queues[0].__class__.checksum.__get__(clone)
        assert clone.checksum() == queues[0].checksum()

    def test_mqueue_snapshot_worker_count_guard(self):
        _cluster, queues = self._queue_pair()
        blob = queues[0].snapshot()
        from repro.apps.mqueue import ReplicatedQueue
        other = ReplicatedQueue.__new__(ReplicatedQueue)
        other.num_workers = 3
        with pytest.raises(ValueError):
            other.restore(blob)

    def test_mqueue_apply_entry_matches_delivery_path(self):
        _cluster, queues = self._queue_pair()
        from repro.apps.mqueue import ReplicatedQueue
        replayed = ReplicatedQueue.__new__(ReplicatedQueue)
        replayed.num_workers = 2
        replayed.enqueued_total = 0
        replayed.taken_total = 0
        from collections import deque
        replayed._pending = [deque(), deque()]
        for worker_q in queues[0]._pending:
            pass  # original kept intact
        # Rebuild from the equivalent durable entries.
        entries = sorted(
            (idx, producer, payload)
            for worker_q in queues[0]._pending
            for idx, producer, payload in worker_q)
        for _idx, producer, payload in entries:
            ReplicatedQueue.apply_entry(replayed, producer, payload)
        checksum = ReplicatedQueue.checksum.__get__(replayed)
        assert checksum() == queues[0].checksum()

    def test_kv_snapshot_restore_roundtrip(self):
        from repro.apps.kvstore import KvNode

        cluster = Cluster(2, config=SpindleConfig.optimized(), seed=0)
        cluster.add_subgroup(message_size=128, window=8)
        cluster.build()
        from repro.apps.kvstore import attach_store
        stores = {nid: attach_store(cluster.group(nid), 0)
                  for nid in cluster.node_ids}

        def writer(store, nid):
            for i in range(5):
                yield from store.put(b"k%d.%d" % (nid, i), b"v%d" % i)

        for nid in cluster.node_ids:
            cluster.spawn_sender(writer(stores[nid], nid))
        cluster.run_to_quiescence(max_time=10.0)
        blob = stores[0].snapshot()
        clone = KvNode.__new__(KvNode)
        clone.data = {}
        clone.restore(blob)
        assert clone.data == stores[0].data
        assert stores[0].snapshot() == stores[1].snapshot()


class TestVsyncVerifier:
    def _quiet_cluster(self):
        cluster = Cluster(3, config=SpindleConfig.optimized(), seed=0)
        cluster.add_subgroup(message_size=256, window=8)
        cluster.build()
        verifier = VsyncVerifier(cluster)
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=10, size=256))
        cluster.run_to_quiescence(max_time=10.0)
        return cluster, verifier

    def test_clean_run_passes(self):
        _cluster, verifier = self._quiet_cluster()
        report = verifier.check()
        assert report.ok
        assert report.epochs_checked == 1
        assert report.deliveries_checked == 3 * 3 * 10

    def test_detects_tampered_divergence(self):
        _cluster, verifier = self._quiet_cluster()
        key = (0, 0, 1)  # view 0, sg 0, node 1
        seq, sender, digest = verifier.logs[key][-1]
        verifier.logs[key][-1] = (seq, sender,
                                  None if digest else 0)  # corrupt one
        report = verifier.check()
        assert not report.ok
        assert report.by_category().get("atomicity", 0) >= 1

    def test_detects_gap_in_application_seqs(self):
        _cluster, verifier = self._quiet_cluster()
        key = (0, 0, 2)
        del verifier.logs[key][5]  # node 2 "skipped" a real message
        report = verifier.check()
        assert not report.ok
        assert report.by_category().get("gap", 0) >= 1

    def test_detects_out_of_order_delivery(self):
        _cluster, verifier = self._quiet_cluster()
        key = (0, 0, 0)
        log = verifier.logs[key]
        log[0], log[1] = log[1], log[0]
        report = verifier.check()
        assert not report.ok
        assert report.by_category().get("order", 0) >= 1

    def test_ledger_conflicts_surface(self):
        cluster, verifier = self._quiet_cluster()
        cluster.trim_ledger.conflicts.append("synthetic divergence")
        report = verifier.check()
        assert not report.ok
        assert any(v.startswith("ledger:") for v in report.violations)

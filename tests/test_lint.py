"""Static-half tests: each spindle-lint pass must flag its seeded
violation fixtures and stay quiet on the sanctioned idioms."""

import os
import textwrap

import pytest

from repro.analysis.lint import lint_paths, lint_source
from repro.analysis.lint.findings import (
    Finding,
    format_baseline,
    load_baseline,
    parse_suppressions,
)
from repro.cli import main as cli_main


def run(source, **kwargs):
    return lint_source(textwrap.dedent(source), path="fix.py", **kwargs)


def rules_of(report):
    return [f.rule for f in report.findings]


# ==========================================================================
# Pass 1: monotonicity
# ==========================================================================


class TestMonotonicityPass:
    def test_flags_cells_subscript_store(self):
        report = run("""
            def corrupt(region):
                region.cells[3] = 0
        """)
        assert rules_of(report) == ["sst-monotonic-write"]

    def test_flags_cells_slice_and_whole_replacement(self):
        report = run("""
            def corrupt(region, values):
                region.cells[0:2] = values
                region.cells = list(values)
        """)
        assert rules_of(report) == ["sst-monotonic-write"] * 2

    def test_flags_raw_write_local_call(self):
        report = run("""
            def corrupt(row):
                row.write_local(1, -5)
        """)
        assert rules_of(report) == ["sst-monotonic-write"]

    def test_sanctioned_sst_set_is_clean(self):
        report = run("""
            def publish(sst, col):
                sst.set(col, sst.read_own(col) + 1)
        """)
        assert report.findings == []

    def test_inline_suppression(self):
        report = run("""
            def init(region, values):
                region.cells = values  # spindle-lint: allow[sst-monotonic-write]
        """)
        assert report.findings == []
        assert report.suppressed == 1

    def test_suppression_on_preceding_comment_line(self):
        report = run("""
            def init(region, values):
                # construction-time fill, unobservable
                # spindle-lint: allow[sst-monotonic-write]
                region.cells = values
        """)
        assert report.findings == []
        assert report.suppressed == 1


# ==========================================================================
# Pass 2: predicate purity
# ==========================================================================


class TestPredicatePurityPass:
    def test_flags_attribute_mutation_in_evaluate(self):
        report = run("""
            class Bad(Predicate):
                def evaluate(self):
                    self.count += 1
                    return 0.1, self.count
        """)
        assert "predicate-pure-eval" in rules_of(report)

    def test_flags_push_and_set_calls_in_evaluate(self):
        report = run("""
            class Bad(Predicate):
                def evaluate(self):
                    self.sst.set(0, 1)
                    self.doorbell.ring()
                    return 0.1, True
        """)
        assert rules_of(report).count("predicate-pure-eval") == 2

    def test_flags_generator_evaluate(self):
        report = run("""
            class Bad(Predicate):
                def evaluate(self):
                    yield 0.1
                    return None
        """)
        assert "predicate-pure-eval" in rules_of(report)

    def test_flags_wrong_return_shapes(self):
        report = run("""
            class Bad(Predicate):
                def evaluate(self):
                    if self.done:
                        return
                    if self.half:
                        return True
                    return 0.1, True, "extra"
        """)
        assert rules_of(report).count("predicate-eval-shape") == 3

    def test_flags_evaluate_without_any_return(self):
        report = run("""
            class Bad(Predicate):
                def evaluate(self):
                    cost = 0.1
        """)
        assert "predicate-eval-shape" in rules_of(report)

    def test_clean_evaluate_passes(self):
        report = run("""
            class Good(Predicate):
                def evaluate(self):
                    cost = self.timing.predicate_eval
                    queued = self.queued - self.pushed
                    if queued <= 0:
                        return cost, 0
                    return cost, queued
        """)
        assert report.findings == []

    def test_non_predicate_class_is_ignored(self):
        report = run("""
            class Metric:
                def evaluate(self):
                    self.samples += 1
                    return True
        """)
        assert report.findings == []


# ==========================================================================
# Pass 3: §3.4 lock discipline
# ==========================================================================


class TestLockDisciplinePass:
    def test_flags_yield_from_push_in_trigger(self):
        report = run("""
            class Bad(Predicate):
                def trigger(self, value):
                    yield 0.1
                    yield from self.sst.push(0, 2)
                    return None
        """)
        assert rules_of(report) == ["trigger-deferred-posts"]

    def test_flags_dropped_push_generator(self):
        report = run("""
            class Bad(Predicate):
                def trigger(self, value):
                    yield 0.1
                    self.smc.push_control()
                    return None
        """)
        assert rules_of(report) == ["trigger-deferred-posts"]

    def test_returning_push_generator_is_the_sanctioned_shape(self):
        report = run("""
            class Good(Predicate):
                def trigger(self, value):
                    yield 0.1
                    return self.sst.push(0, 2)
        """)
        assert report.findings == []

    def test_nested_deferred_generator_is_clean(self):
        report = run("""
            class Good(Predicate):
                def trigger(self, value):
                    yield 0.1
                    def deferred():
                        yield from self.sst.push(0, 2)
                    return deferred()
        """)
        assert report.findings == []

    def test_push_outside_trigger_is_not_this_passes_business(self):
        report = run("""
            class Good(Predicate):
                def _deferred_posts(self, lo, hi):
                    yield from self.sst.push(lo, hi)
        """)
        assert report.findings == []


# ==========================================================================
# Pass 4: sim hygiene
# ==========================================================================


class TestSimHygienePass:
    def test_flags_bare_except(self):
        report = run("""
            def f():
                try:
                    g()
                except:
                    pass
        """)
        assert rules_of(report) == ["bare-except"]

    def test_named_except_is_clean(self):
        report = run("""
            def f():
                try:
                    g()
                except ValueError:
                    pass
        """)
        assert report.findings == []

    def test_flags_mutable_default_args(self):
        report = run("""
            def f(items=[], table={}, group=set(), q=deque()):
                return items, table, group, q
        """)
        assert rules_of(report) == ["mutable-default-arg"] * 4

    def test_flags_sync_wakeup_of_stored_continuation(self):
        report = run("""
            def fire(waiter, value):
                waiter(value)
        """)
        assert rules_of(report) == ["sync-wakeup"]

    def test_flags_direct_call_into_waiter_queue(self):
        report = run("""
            class E:
                def fire(self, value):
                    self._waiters[0](value)
        """)
        assert rules_of(report) == ["sync-wakeup"]

    def test_queued_wakeup_is_clean(self):
        report = run("""
            class E:
                def fire(self, value):
                    for waiter in self._waiters:
                        self.sim.call_after(0.0, waiter, value)
        """)
        assert report.findings == []


# ==========================================================================
# Runner / suppressions / baseline / CLI
# ==========================================================================

SEEDED_VIOLATION = """\
class EvilPredicate(Predicate):
    def evaluate(self):
        self.hits += 1
        return True

    def trigger(self, value):
        yield 0.1
        yield from self.sst.push(0, 2)
"""


class TestRunnerAndBaseline:
    def test_findings_carry_scope_and_fingerprint(self):
        report = run("""
            class C:
                def m(self, region):
                    region.cells[0] = 1
        """)
        (finding,) = report.findings
        assert finding.symbol == "C.m"
        assert finding.fingerprint == "fix.py::C.m::sst-monotonic-write"

    def test_baseline_hides_known_findings(self):
        baseline = {"fix.py::C.m::sst-monotonic-write"}
        report = run("""
            class C:
                def m(self, region):
                    region.cells[0] = 1
        """, baseline=baseline)
        assert report.findings == [] and len(report.baselined) == 1

    def test_baseline_roundtrip(self):
        finding = Finding("a.py", 3, 0, "bare-except", "msg", "f")
        text = format_baseline([finding])
        assert load_baseline(text) == {"a.py::f::bare-except"}

    def test_parse_suppressions_multiple_rules(self):
        sup = parse_suppressions(
            ["x = 1  # spindle-lint: allow[bare-except, sync-wakeup]"])
        assert sup[1] == {"bare-except", "sync-wakeup"}

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text(SEEDED_VIOLATION)
        (tmp_path / "pkg" / "good.py").write_text("X = 1\n")
        report = lint_paths([str(tmp_path)])
        assert report.files_scanned == 2
        assert {f.rule for f in report.findings} == {
            "predicate-pure-eval", "predicate-eval-shape",
            "trigger-deferred-posts",
        }

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = lint_paths([str(bad)])
        assert not report.ok and "syntax error" in report.errors[0]

    def test_unknown_pass_selection_raises(self):
        with pytest.raises(ValueError):
            run("x = 1", select=["no-such-pass"])


class TestCli:
    def test_cli_nonzero_on_seeded_violation(self, tmp_path, capsys):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(SEEDED_VIOLATION)
        rc = cli_main(["lint", str(fixture), "--no-baseline"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "trigger-deferred-posts" in out

    def test_cli_zero_on_clean_file(self, tmp_path, capsys):
        fixture = tmp_path / "clean.py"
        fixture.write_text("VALUE = 42\n")
        rc = cli_main(["lint", str(fixture), "--no-baseline"])
        assert rc == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_cli_baseline_workflow(self, tmp_path, capsys):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(SEEDED_VIOLATION)
        baseline = tmp_path / "baseline.txt"
        rc = cli_main(["lint", str(fixture), "--baseline", str(baseline),
                       "--write-baseline"])
        assert rc == 0 and baseline.exists()
        rc = cli_main(["lint", str(fixture), "--baseline", str(baseline)])
        assert rc == 0  # all findings baselined now
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_cli_shipped_tree_is_clean(self, capsys):
        """Acceptance: `spindle-repro lint src/` exits zero on the repo."""
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(repo_root, "src")
        baseline = os.path.join(repo_root, ".spindle-lint-baseline")
        rc = cli_main(["lint", src, "--baseline", baseline])
        out = capsys.readouterr().out
        assert rc == 0, out

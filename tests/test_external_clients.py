"""Tests for external DDS clients (relayed publish/subscribe, §4.6)."""

import pytest

from repro.core.config import SpindleConfig
from repro.dds import (
    DdsDomain,
    ExternalClient,
    QosLevel,
    QosProfile,
    RDMA_TRANSPORT,
    TCP_TRANSPORT,
)


def build_domain(n=4, qos=None):
    domain = DdsDomain(n, config=SpindleConfig.optimized())
    topic = domain.create_topic(
        "relay-topic", publishers=[0], subscribers=list(range(1, n)),
        qos=qos if qos is not None else QosProfile(QosLevel.ATOMIC),
        message_size=1024, window=16)
    domain.build()
    return domain, topic


class TestPublishThroughRelay:
    @pytest.mark.parametrize("transport", [TCP_TRANSPORT, RDMA_TRANSPORT])
    def test_client_samples_reach_all_subscribers(self, transport):
        domain, topic = build_domain()
        seen = {n: [] for n in (1, 2, 3)}
        for n in seen:
            domain.participant(n).create_reader(
                topic, listener=lambda s, n=n: seen[n].append(s.value))
        client = ExternalClient(domain, relay_node=0, transport=transport)
        samples = [b"ext-%02d" % k for k in range(20)]
        domain.spawn(client.publisher(topic, samples))
        domain.run_to_quiescence()
        for n in seen:
            assert seen[n] == samples
        assert client.published == client.relayed == 20

    def test_relayed_samples_totally_ordered_with_native(self):
        """Client publishes interleave with the relay's own publishes in
        one total order, identical at every subscriber."""
        domain, topic = build_domain()
        logs = {n: [] for n in (1, 2, 3)}
        for n in logs:
            domain.participant(n).create_reader(
                topic, listener=lambda s, n=n: logs[n].append((s.seq, s.value)))
        client = ExternalClient(domain, relay_node=0)
        domain.spawn(client.publisher(
            topic, [b"ext-%02d" % k for k in range(15)]))
        writer = domain.participant(0).create_writer(topic)

        def native():
            for k in range(15):
                yield from writer.write(b"nat-%02d" % k)

        domain.spawn(native())
        domain.run_to_quiescence()
        assert logs[1] == logs[2] == logs[3]
        assert len(logs[1]) == 30

    def test_tcp_slower_than_rdma_transport(self):
        def completion_time(transport):
            domain, topic = build_domain()
            reader = domain.participant(1).create_reader(topic)
            client = ExternalClient(domain, relay_node=0, transport=transport)
            domain.spawn(client.publisher(
                topic, [b"x" * 1024 for _ in range(50)]))
            domain.run_to_quiescence()
            assert reader.received == 50
            stats = domain.cluster.group(1).stats(
                domain.subgroup_of(topic))
            return stats.last_delivery_time

        assert completion_time(RDMA_TRANSPORT) < completion_time(TCP_TRANSPORT)

    def test_unknown_relay_rejected(self):
        domain, topic = build_domain()
        with pytest.raises(ValueError, match="unknown relay node"):
            ExternalClient(domain, relay_node=99)


class TestSubscribeThroughRelay:
    def test_client_receives_forwarded_samples(self):
        domain, topic = build_domain()
        client = ExternalClient(domain, relay_node=1)
        got = []
        client.subscribe(topic, listener=lambda s: got.append(s.value))
        writer = domain.participant(0).create_writer(topic)

        def pub():
            for k in range(12):
                yield from writer.write(b"s%02d" % k)
            writer.finish()

        domain.spawn(pub())
        domain.run_to_quiescence()
        assert [v for v in got] == [b"s%02d" % k for k in range(12)]
        assert len(client.received) == 12

    def test_client_sample_latency_includes_transport(self):
        """The forwarded sample arrives at the client strictly after the
        relay delivered it."""
        domain, topic = build_domain()
        client = ExternalClient(domain, relay_node=1,
                                transport=TCP_TRANSPORT)
        arrival = {}
        client.subscribe(topic,
                         listener=lambda s: arrival.setdefault(
                             "client", domain.sim.now))
        relay_time = {}
        domain.participant(2).create_reader(
            topic, listener=lambda s: relay_time.setdefault(
                "relay", domain.sim.now))
        writer = domain.participant(0).create_writer(topic)

        def pub():
            yield from writer.write(b"only-one")
            writer.finish()

        domain.spawn(pub())
        domain.run_to_quiescence()
        assert arrival["client"] > relay_time["relay"] + TCP_TRANSPORT.latency / 2

    def test_full_loop_external_to_external(self):
        """Client A publishes through relay 0; client B subscribes
        through relay 2 — the full relayed round trip."""
        domain, topic = build_domain()
        publisher = ExternalClient(domain, relay_node=0, name="pub-client")
        subscriber = ExternalClient(domain, relay_node=2, name="sub-client")
        subscriber.subscribe(topic)
        domain.spawn(publisher.publisher(
            topic, [b"loop-%d" % k for k in range(8)]))
        domain.run_to_quiescence()
        assert [s.value for s in subscriber.received] == [
            b"loop-%d" % k for k in range(8)]

    def test_close_stops_relay(self):
        domain, topic = build_domain()
        client = ExternalClient(domain, relay_node=0)
        client.close()
        assert not client._relay_proc.alive

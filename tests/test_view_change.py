"""Integration tests for virtual synchrony: failure detection, wedging,
ragged trim, failure atomicity, and epoch restart."""

import pytest

from repro.core.config import SpindleConfig
from repro.sim.units import ms, us
from repro.workloads import Cluster, continuous_sender


def build(n, count=0, size=512, window=10, heartbeat=us(100), timeout=us(500)):
    cluster = Cluster(num_nodes=n, config=SpindleConfig.optimized())
    cluster.add_subgroup(message_size=size, window=window)
    cluster.enable_membership(heartbeat_period=heartbeat,
                              suspicion_timeout=timeout)
    cluster.build()
    views = {nid: [] for nid in cluster.node_ids}
    logs = {nid: [] for nid in cluster.node_ids}
    for nid in cluster.node_ids:
        cluster.group(nid).membership.on_new_view.append(
            lambda v, nid=nid: views[nid].append(v))
        cluster.group(nid).on_delivery(
            0, lambda d, nid=nid: logs[nid].append((d.seq, d.sender)))
    if count:
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=count, size=size))
    return cluster, views, logs


class TestFailureDetection:
    def test_crashed_node_detected_and_removed(self):
        cluster, views, _ = build(4)
        cluster.sim.call_after(ms(1), cluster.fail_node, 2)
        cluster.run(until=ms(30))
        for nid in (0, 1, 3):
            assert len(views[nid]) == 1
            assert views[nid][0].members == (0, 1, 3)
            assert views[nid][0].view_id == 1

    def test_no_view_change_without_failure(self):
        cluster, views, _ = build(3)
        cluster.run(until=ms(10))
        assert all(not v for v in views.values())

    def test_leader_failure_next_member_leads(self):
        cluster, views, _ = build(4)
        cluster.sim.call_after(ms(1), cluster.fail_node, 0)
        cluster.run(until=ms(30))
        for nid in (1, 2, 3):
            assert views[nid] and views[nid][0].members == (1, 2, 3)
            assert views[nid][0].leader == 1

    def test_two_simultaneous_failures(self):
        cluster, views, _ = build(5)
        cluster.sim.call_after(ms(1), cluster.fail_node, 2)
        cluster.sim.call_after(ms(1.05), cluster.fail_node, 4)
        cluster.run(until=ms(40))
        for nid in (0, 1, 3):
            assert views[nid], f"node {nid} saw no view change"
            final = views[nid][-1]
            assert 2 not in final.members
            assert 4 not in final.members

    def test_manual_suspicion_triggers_view_change(self):
        cluster, views, _ = build(3, heartbeat=ms(10), timeout=ms(100))
        # No crash: operator marks node 2 as failed explicitly.
        cluster.fabric.fail_node(2)
        cluster.group(2).kill()
        cluster.sim.call_after(ms(1), cluster.group(0).membership.suspect, 2)
        cluster.run(until=ms(30))
        for nid in (0, 1):
            assert views[nid] and views[nid][0].members == (0, 1)


class TestWedging:
    def test_wedged_nodes_stop_sending(self):
        cluster, views, _ = build(3)
        cluster.sim.call_after(ms(1), cluster.fail_node, 2)
        cluster.run(until=ms(30))
        mc = cluster.mc(0, 0)
        assert mc.wedged
        with pytest.raises(RuntimeError, match="wedged"):
            gen = mc.queue_message(64, None)
            cluster.sim.spawn(gen)
            cluster.run(until=ms(31))

    def test_suspicion_is_infectious(self):
        """A single node's suspicion spreads through the SST."""
        cluster, views, _ = build(4, heartbeat=ms(50), timeout=ms(500))
        cluster.fabric.fail_node(3)
        cluster.group(3).kill()
        cluster.sim.call_after(ms(1), cluster.group(1).membership.suspect, 3)
        cluster.run(until=ms(40))
        for nid in (0, 1, 2):
            assert cluster.group(nid).membership.is_suspected(3)
            assert views[nid] and views[nid][0].members == (0, 1, 2)


class TestFailureAtomicity:
    def test_survivors_deliver_identical_sets(self):
        """Virtual synchrony: after the view change, every survivor has
        delivered exactly the same messages in the same order."""
        cluster, views, logs = build(4, count=500, window=10)
        cluster.sim.call_after(ms(1.2), cluster.fail_node, 3)
        cluster.run(until=ms(100))
        survivor_logs = [logs[nid] for nid in (0, 1, 2)]
        assert survivor_logs[0] == survivor_logs[1] == survivor_logs[2]
        assert all(views[nid] for nid in (0, 1, 2))

    def test_mid_stream_failure_trims_consistently(self):
        """The failed node's in-flight messages are either delivered at
        all survivors or at none (the ragged trim)."""
        cluster, views, logs = build(4, count=300, window=5)
        cluster.sim.call_after(ms(0.8), cluster.fail_node, 1)
        cluster.run(until=ms(100))
        sets = [set(logs[nid]) for nid in (0, 2, 3)]
        assert sets[0] == sets[1] == sets[2]
        from_failed = [x for x in sets[0] if x[1] == 1]
        # The failed node got some messages through before dying...
        assert from_failed
        # ...and the survivors delivered fewer than it queued.
        assert len(from_failed) < 300

    def test_undelivered_own_messages_reported(self):
        """Senders learn which of their messages died with the view."""
        cluster, views, logs = build(4, count=300, window=5)
        cluster.sim.call_after(ms(0.8), cluster.fail_node, 1)
        cluster.run(until=ms(100))
        mc = cluster.mc(0, 0)
        undelivered = mc.undelivered_own_messages()
        delivered_from_0 = sum(1 for (_, s) in logs[2] if s == 0)
        assert delivered_from_0 + len(undelivered) >= mc.reals_queued


class TestEpochRestart:
    def test_messaging_resumes_in_new_view(self):
        """End-to-end continuity: fail a node, install the new view,
        resend undelivered messages, and finish the workload."""
        cluster, views, logs = build(4, count=200, window=8)
        cluster.sim.call_after(ms(1), cluster.fail_node, 3)
        cluster.run(until=ms(100))
        new_view = views[0][-1]
        assert new_view.members == (0, 1, 2)

        # Collect what survived, then restart the epoch.
        undelivered = {
            nid: cluster.mc(nid, 0).undelivered_own_messages()
            for nid in new_view.members
        }
        already = {nid: len(logs[nid]) for nid in new_view.members}
        cluster.install_view(new_view)
        for nid in new_view.members:
            cluster.group(nid).on_delivery(
                0, lambda d, nid=nid: logs[nid].append((d.seq, d.sender)))

        def resender(nid):
            mc = cluster.mc(nid, 0)
            for slot in undelivered[nid]:
                yield from mc.send(slot.size, slot.payload)
            mc.mark_finished()

        for nid in new_view.members:
            cluster.spawn_sender(resender(nid))
        cluster.run(until=ms(200))

        resent_total = sum(len(v) for v in undelivered.values())
        for nid in new_view.members:
            new_deliveries = len(logs[nid]) - already[nid]
            assert new_deliveries == resent_total

    def test_new_view_smaller_sst(self):
        cluster, views, _ = build(3)
        cluster.sim.call_after(ms(1), cluster.fail_node, 2)
        cluster.run(until=ms(30))
        cluster.install_view(views[0][-1])
        assert sorted(cluster.groups) == [0, 1]
        assert cluster.group(0).sst.members == [0, 1]

"""Tests for GroupNode wiring and the layout builder."""

import pytest

from repro.core.config import SpindleConfig
from repro.core.group import build_layout
from repro.core.membership import SubgroupSpec, View
from repro.workloads import Cluster, continuous_sender


class TestBuildLayout:
    def make_view(self, **kw):
        return View(0, (0, 1, 2), (
            SubgroupSpec.of(0, [0, 1, 2], window=4, message_size=128, **kw),
        ))

    def test_layout_contains_subgroup_block(self):
        layout, blocks, membership = build_layout(self.make_view())
        cols = blocks[0]
        assert (cols.received, cols.delivered, cols.nulls) == (0, 1, 2)
        assert len(layout) == 3 + 4  # control + window slots
        assert membership is None

    def test_membership_columns_appended(self):
        layout, blocks, membership = build_layout(
            self.make_view(), with_membership=True)
        assert membership is not None
        assert membership.heartbeat == 7  # after the subgroup block
        assert len(layout) > 7

    def test_persistent_block_has_persisted_column(self):
        layout, blocks, _ = build_layout(self.make_view(persistent=True))
        cols = blocks[0]
        assert cols.persisted == 3
        assert cols.control_span == (0, 4)

    def test_unordered_block_has_per_sender_acks(self):
        layout, blocks, _ = build_layout(
            self.make_view(delivery_mode="unordered"))
        cols = blocks[0]
        assert cols.recv_from(0) == 3
        assert cols.recv_from(2) == 5
        assert cols.control_span == (0, 6)

    def test_layout_identical_for_all_nodes(self):
        """Column offsets must agree across nodes (one-sided writes land
        by offset): building twice yields identical layouts."""
        a, _, _ = build_layout(self.make_view())
        b, _, _ = build_layout(self.make_view())
        assert a.cell_sizes == b.cell_sizes
        assert [c.name for c in a.columns] == [c.name for c in b.columns]


class TestGroupNodeWiring:
    def test_delivery_callbacks_fire_in_registration_order(self):
        cluster = Cluster(2, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=128, window=4)
        cluster.build()
        order = []
        cluster.group(0).on_delivery(0, lambda d: order.append("first"))
        cluster.group(0).on_delivery(0, lambda d: order.append("second"))
        cluster.spawn_sender(continuous_sender(
            cluster.mc(0, 0), count=1, size=128))
        cluster.run_to_quiescence()
        assert order == ["first", "second"]

    def test_on_durable_requires_persistent_subgroup(self):
        cluster = Cluster(2, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=128, window=4)
        cluster.build()
        with pytest.raises(KeyError):
            cluster.group(0).on_durable(0, lambda w: None)

    def test_teardown_releases_regions_and_hooks(self):
        cluster = Cluster(2, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=128, window=4)
        cluster.build()
        node = cluster.fabric.nodes[0]
        assert node.regions and node.on_remote_write
        cluster.group(0).teardown()
        assert not node.regions
        assert not node.on_remote_write

    def test_stats_accessor(self):
        cluster = Cluster(2, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=128, window=4)
        cluster.build()
        assert cluster.group(1).stats(0).delivered == 0

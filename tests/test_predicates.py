"""Unit tests for the predicate-thread framework."""

import pytest

from repro.core.config import SpindleConfig, TimingModel
from repro.predicates import Predicate, PredicateThread
from repro.sim import Simulator
from repro.sim.units import us


class CountingPredicate(Predicate):
    """Fires ``fires`` times, then goes quiet; optionally defers posts."""

    def __init__(self, name, fires=1, eval_cost=us(0.05), body_cost=us(0.1),
                 post_cost=0.0, subgroup=None):
        self.name = name
        self.subgroup = subgroup
        self.remaining = fires
        self.eval_cost = eval_cost
        self.body_cost = body_cost
        self.post_cost = post_cost
        self.triggered = 0
        self.posted = 0

    def evaluate(self):
        return self.eval_cost, self.remaining > 0

    def trigger(self, value):
        self.remaining -= 1
        self.triggered += 1
        yield self.body_cost
        if self.post_cost > 0:
            return self._posts()
        return None

    def _posts(self):
        yield self.post_cost
        self.posted += 1


def make_thread(config=None):
    sim = Simulator()
    thread = PredicateThread(sim, config or SpindleConfig.baseline(),
                             TimingModel())
    return sim, thread


def test_trigger_runs_when_predicate_true():
    sim, thread = make_thread()
    pred = CountingPredicate("p", fires=3)
    thread.register(pred)
    thread.start()
    sim.run(until=0.001)
    assert pred.triggered == 3


def test_thread_parks_when_no_work():
    sim, thread = make_thread()
    pred = CountingPredicate("p", fires=1)
    thread.register(pred)
    thread.start()
    sim.run()  # drains: thread must park on the doorbell
    assert pred.triggered == 1
    assert thread.idle_time == 0.0  # parked, not spinning
    assert thread.doorbell.waiting == 1


def test_doorbell_wakes_parked_thread():
    sim, thread = make_thread()
    pred = CountingPredicate("p", fires=1)
    thread.register(pred)
    thread.start()
    sim.run()
    assert pred.triggered == 1
    pred.remaining = 1  # new work appears...
    thread.doorbell.ring()  # ...and the doorbell announces it
    sim.run()
    assert pred.triggered == 2


def test_all_predicates_evaluated_fairly():
    sim, thread = make_thread()
    preds = [CountingPredicate(f"p{i}", fires=2) for i in range(5)]
    for p in preds:
        thread.register(p)
    thread.start()
    sim.run()
    assert all(p.triggered == 2 for p in preds)


def test_stop_terminates_loop():
    sim, thread = make_thread()
    thread.register(CountingPredicate("p", fires=10**9))
    thread.start()
    sim.call_after(us(50), thread.stop)
    sim.run()
    assert not thread.running


def test_double_start_rejected():
    sim, thread = make_thread()
    thread.start()
    with pytest.raises(RuntimeError):
        thread.start()


def test_unregister_removes_predicate():
    sim, thread = make_thread()
    pred = CountingPredicate("p", fires=100)
    thread.register(pred)
    thread.unregister(pred)
    thread.start()
    sim.run(until=us(10))
    assert pred.triggered == 0


def test_post_time_accounted():
    sim, thread = make_thread()
    pred = CountingPredicate("p", fires=4, post_cost=us(1.0))
    thread.register(pred)
    thread.start()
    sim.run()
    assert pred.posted == 4
    assert thread.post_time == pytest.approx(4 * us(1.0))
    assert thread.posts_run == 4


def test_posts_inside_lock_without_early_release():
    """Baseline: the lock is held while posts run, blocking contenders."""
    sim, thread = make_thread(SpindleConfig.baseline())
    pred = CountingPredicate("p", fires=1, post_cost=us(10))
    thread.register(pred)
    thread.start()
    acquired_at = {}

    def contender():
        yield us(0.01)  # let the thread grab the lock first
        yield thread.lock.acquire()
        acquired_at["t"] = sim.now
        thread.lock.release()

    sim.spawn(contender())
    sim.run()
    assert acquired_at["t"] >= us(10)  # had to wait out the posting


def test_posts_outside_lock_with_early_release():
    """§3.4: with early release, contenders get the lock while the
    thread is still posting."""
    sim, thread = make_thread(SpindleConfig.baseline().with_(early_lock_release=True))
    pred = CountingPredicate("p", fires=1, post_cost=us(10))
    thread.register(pred)
    thread.start()
    acquired_at = {}

    def contender():
        yield us(0.01)
        yield thread.lock.acquire()
        acquired_at["t"] = sim.now
        thread.lock.release()

    sim.spawn(contender())
    sim.run()
    assert acquired_at["t"] < us(10)


def test_subgroup_time_accounting():
    sim, thread = make_thread()
    active = CountingPredicate("a", fires=50, body_cost=us(1.0), subgroup=0)
    idle = CountingPredicate("b", fires=0, subgroup=1)
    thread.register(active)
    thread.register(idle)
    thread.start()
    sim.run()
    frac_active = thread.subgroup_time_fraction(0)
    frac_idle = thread.subgroup_time_fraction(1)
    assert frac_active > 0.8
    assert frac_active + frac_idle == pytest.approx(1.0)


def test_iteration_and_busy_counters_advance():
    sim, thread = make_thread()
    thread.register(CountingPredicate("p", fires=5))
    thread.start()
    sim.run()
    assert thread.iterations >= 5
    assert thread.busy_time > 0

"""Property-based tests (hypothesis): the atomic multicast invariants
hold under randomized group shapes, window sizes, workloads, sending
patterns and optimization combinations."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import SpindleConfig
from repro.sim.units import us
from repro.workloads import Cluster, continuous_sender

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

config_strategy = st.builds(
    SpindleConfig,
    batch_send=st.booleans(),
    batch_receive=st.booleans(),
    batch_delivery=st.booleans(),
    null_sends=st.booleans(),
    null_send_batched=st.booleans(),
    early_lock_release=st.booleans(),
    batched_upcall=st.booleans(),
)


def run_workload(n, window, config, counts, delays, size=256):
    """Build a cluster where node i sends counts[i] messages with
    delays[i] pacing; return per-node delivery logs."""
    cluster = Cluster(num_nodes=n, config=config)
    cluster.add_subgroup(message_size=size, window=window)
    cluster.build()
    log = {nid: [] for nid in cluster.node_ids}
    for nid in cluster.node_ids:
        cluster.group(nid).on_delivery(
            0, lambda d, nid=nid: log[nid].append((d.seq, d.sender, d.payload)))
    for nid, (count, delay) in enumerate(zip(counts, delays)):
        if count > 0:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=count, size=size, delay=delay,
                payload_fn=lambda k, nid=nid: b"%d:%d" % (nid, k)))
        else:
            cluster.mc(nid, 0).mark_finished()
    cluster.run_to_quiescence(max_time=5.0)
    return cluster, log


@SLOW
@given(
    n=st.integers(2, 5),
    window=st.integers(2, 12),
    count=st.integers(1, 20),
    config=config_strategy,
)
def test_uniform_workload_total_order(n, window, count, config):
    """Equal senders: every config must deliver everything, identically
    ordered, exactly once, FIFO per sender."""
    cluster, log = run_workload(
        n, window, config, counts=[count] * n, delays=[0.0] * n)
    logs = list(log.values())
    assert all(l == logs[0] for l in logs)
    assert len(logs[0]) == n * count
    payloads = [p for (_, _, p) in logs[0]]
    assert len(set(payloads)) == n * count
    for sender in range(n):
        ks = [int(p.split(b":")[1]) for (_, s, p) in logs[0] if s == sender]
        assert ks == sorted(ks)


@SLOW
@given(
    n=st.integers(2, 5),
    window=st.integers(2, 10),
    counts=st.lists(st.integers(0, 15), min_size=5, max_size=5),
    delays=st.lists(st.sampled_from([0.0, us(1), us(20), us(150)]),
                    min_size=5, max_size=5),
    data=st.data(),
)
def test_ragged_workload_with_nulls(n, window, counts, delays, data):
    """Unequal, delayed, possibly silent senders: with null-sends on,
    the pipeline never stalls and order is identical everywhere."""
    counts = counts[:n]
    delays = delays[:n]
    config = SpindleConfig.batching_and_nulls().with_(
        early_lock_release=data.draw(st.booleans()),
        null_send_batched=data.draw(st.booleans()),
    )
    cluster, log = run_workload(n, window, config, counts, delays)
    logs = list(log.values())
    assert all(l == logs[0] for l in logs)
    assert len(logs[0]) == sum(counts)


@SLOW
@given(
    n=st.integers(2, 4),
    count=st.integers(1, 12),
    seed=st.integers(0, 2**16),
)
def test_jittered_sending_deterministic_per_seed(n, count, seed):
    """Same seed -> identical run; different workload shapes still agree
    across nodes."""
    def one_run():
        cluster = Cluster(num_nodes=n, config=SpindleConfig.optimized(),
                          seed=seed)
        cluster.add_subgroup(message_size=128, window=6)
        cluster.build()
        log = []
        cluster.group(0).on_delivery(0, lambda d: log.append((d.seq, d.sender)))
        from repro.workloads import jittered_sender
        for nid in cluster.node_ids:
            cluster.spawn_sender(jittered_sender(
                cluster.mc(nid, 0), count=count, size=128,
                rng=cluster.sim.rng, max_gap=us(30)))
        cluster.run_to_quiescence(max_time=5.0)
        return log, cluster.sim.now

    log_a, t_a = one_run()
    log_b, t_b = one_run()
    assert log_a == log_b
    assert t_a == t_b
    assert len(log_a) == n * count


@SLOW
@given(
    window=st.integers(1, 6),
    count=st.integers(1, 30),
)
def test_tiny_windows_never_lose_messages(window, count):
    """Slot-reuse safety across aggressive wrap-around."""
    cluster, log = run_workload(
        3, window, SpindleConfig.optimized(),
        counts=[count] * 3, delays=[0.0] * 3)
    for entries in log.values():
        assert len(entries) == 3 * count


@SLOW
@given(config=config_strategy, count=st.integers(1, 10))
def test_received_and_delivered_counters_monotone(config, count):
    """SST acknowledgment counters only ever increase, as every peer
    observes them (the monotonicity that batching exploits)."""
    cluster = Cluster(num_nodes=3, config=config)
    cluster.add_subgroup(message_size=128, window=5)
    cluster.build()
    observed = {nid: [] for nid in cluster.node_ids}
    for nid in cluster.node_ids:
        sst = cluster.group(nid).sst
        cols = cluster.mc(nid, 0).cols

        def hook(region, snap, nid=nid, sst=sst, cols=cols):
            values = tuple(
                (sst.read(owner, cols.received), sst.read(owner, cols.delivered))
                for owner in sst.members
            )
            observed[nid].append(values)

        cluster.fabric.nodes[nid].on_remote_write.append(hook)
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=128))
    cluster.run_to_quiescence(max_time=5.0)
    for snapshots in observed.values():
        for earlier, later in zip(snapshots, snapshots[1:]):
            for (r0, d0), (r1, d1) in zip(earlier, later):
                assert r1 >= r0
                assert d1 >= d0

"""Unit tests for the SMC ring-buffer layer and its sequence arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.rdma import RdmaFabric
from repro.sim import Simulator
from repro.smc import (
    SMC,
    SlotValue,
    SubgroupColumns,
    contiguous_seq,
    ring_spans,
    seq_of,
    slot_position,
)
from repro.sst import SST, SSTLayout, wire_ssts


class TestRingArithmetic:
    def test_slot_position_wraps(self):
        assert slot_position(0, 4) == 0
        assert slot_position(3, 4) == 3
        assert slot_position(4, 4) == 0
        assert slot_position(9, 4) == 1

    def test_ring_spans_no_wrap(self):
        assert ring_spans(0, 3, 10) == [(0, 3)]
        assert ring_spans(7, 10, 10) == [(7, 3)]

    def test_ring_spans_with_wrap(self):
        assert ring_spans(8, 12, 10) == [(8, 2), (0, 2)]

    def test_ring_spans_full_window(self):
        assert ring_spans(5, 15, 10) == [(5, 5), (0, 5)]

    def test_ring_spans_empty(self):
        assert ring_spans(4, 4, 10) == []

    def test_ring_spans_overflow_rejected(self):
        with pytest.raises(ValueError):
            ring_spans(0, 11, 10)
        with pytest.raises(ValueError):
            ring_spans(5, 4, 10)

    @given(st.integers(0, 1000), st.integers(0, 50), st.integers(1, 60))
    def test_ring_spans_cover_exactly_once(self, lo, count, window):
        """Property: spans cover each message's slot exactly once, in
        order, with at most two spans."""
        count = min(count, window)
        hi = lo + count
        spans = ring_spans(lo, hi, window)
        assert len(spans) <= 2
        covered = [pos for first, n in spans for pos in range(first, first + n)]
        expected = [slot_position(k, window) for k in range(lo, hi)]
        assert covered == expected

    def test_seq_of_round_robin_order(self):
        # 3 senders: round 0 -> seqs 0,1,2; round 1 -> seqs 3,4,5.
        assert [seq_of(0, j, 3) for j in range(3)] == [0, 1, 2]
        assert [seq_of(1, j, 3) for j in range(3)] == [3, 4, 5]

    def test_paper_total_order_definition(self):
        """§3.3: M(i1,k1) < M(i2,k2) iff k1<k2 or (k1=k2 and i1<i2)."""
        S = 4
        msgs = [(k, i) for k in range(3) for i in range(S)]
        seqs = [seq_of(k, i, S) for (k, i) in msgs]
        assert seqs == sorted(seqs)
        for (k1, i1) in msgs:
            for (k2, i2) in msgs:
                lt_paper = k1 < k2 or (k1 == k2 and i1 < i2)
                lt_seq = seq_of(k1, i1, S) < seq_of(k2, i2, S)
                assert lt_paper == lt_seq


class TestContiguousSeq:
    def test_nothing_received(self):
        assert contiguous_seq([0, 0, 0], 3) == -1

    def test_one_full_round(self):
        assert contiguous_seq([1, 1, 1], 3) == 2

    def test_partial_round_prefix(self):
        assert contiguous_seq([2, 1, 1], 3) == 3
        assert contiguous_seq([2, 2, 1], 3) == 4

    def test_gap_blocks_progress(self):
        # rank 1 lagging: even if rank 2 is ahead, seq stops at rank 0.
        assert contiguous_seq([2, 1, 5], 3) == 3

    def test_single_sender(self):
        assert contiguous_seq([7], 1) == 6

    def test_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            contiguous_seq([1, 2], 3)
        with pytest.raises(ValueError):
            contiguous_seq([], 0)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=8))
    def test_matches_bruteforce(self, covered):
        """Property: contiguous_seq == largest s with all seq<=s covered."""
        S = len(covered)
        received = {
            seq_of(k, j, S) for j in range(S) for k in range(covered[j])
        }
        expected = -1
        while expected + 1 in received:
            expected += 1
        assert contiguous_seq(covered, S) == expected

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=8),
           st.integers(0, 7))
    def test_monotonic_in_coverage(self, covered, bump_idx):
        """Property: receiving more never decreases received_num."""
        S = len(covered)
        bumped = list(covered)
        bumped[bump_idx % S] += 1
        assert contiguous_seq(bumped, S) >= contiguous_seq(covered, S)


def build_smc_cluster(n=3, window=4, message_size=64):
    sim = Simulator()
    fabric = RdmaFabric(sim)
    nodes = [fabric.add_node() for _ in range(n)]
    ssts = {}
    smcs = {}
    cols_by_node = {}
    members = [x.node_id for x in nodes]
    for node in nodes:
        layout = SSTLayout()
        cols = SubgroupColumns.declare(layout, 0, window, message_size)
        ssts[node.node_id] = SST(layout, fabric, node, members)
        cols_by_node[node.node_id] = cols
    wire_ssts(ssts)
    for nid in members:
        smcs[nid] = SMC(ssts[nid], cols_by_node[nid], members)
    return sim, fabric, ssts, smcs


class TestSMC:
    def test_declare_layout_block(self):
        layout = SSTLayout()
        cols = SubgroupColumns.declare(layout, 0, window=3, message_size=128)
        assert (cols.received, cols.delivered, cols.nulls) == (0, 1, 2)
        assert cols.first_slot == 3
        assert len(layout) == 6
        assert cols.control_span == (0, 3)

    def test_write_and_read_local_slot(self):
        sim, fabric, ssts, smcs = build_smc_cluster()
        value = SlotValue(0, 0, 5, b"hello", 0.0)
        smcs[0].write_slot(value)
        assert smcs[0].read_slot(0, 0) == value
        assert smcs[0].has_message(0, 0)
        assert not smcs[0].has_message(0, 1)

    def test_push_messages_delivers_to_peers(self):
        sim, fabric, ssts, smcs = build_smc_cluster()
        for k in range(3):
            smcs[0].write_slot(SlotValue(k, k, 4, b"m%d" % k, 0.0))

        def proc():
            posted = yield from smcs[0].push_messages(0, 3)
            assert posted == 2  # one span, two peers

        sim.spawn(proc())
        sim.run()
        for peer in (1, 2):
            for k in range(3):
                assert smcs[peer].has_message(0, k)
                assert smcs[peer].read_slot(0, k).payload == b"m%d" % k

    def test_push_messages_wraparound_two_writes_per_peer(self):
        sim, fabric, ssts, smcs = build_smc_cluster(window=4)
        # Messages 3,4,5 occupy slots 3,0,1 -> two spans.
        for k in range(3, 6):
            smcs[0].write_slot(SlotValue(k, k, 4, b"x", 0.0))

        def proc():
            posted = yield from smcs[0].push_messages(3, 6)
            assert posted == 4  # two spans x two peers

        before = fabric.nodes[0].writes_posted
        sim.spawn(proc())
        sim.run()
        assert fabric.nodes[0].writes_posted - before == 4
        assert smcs[1].has_message(0, 5)

    def test_slot_wrap_overwrites_old_message(self):
        sim, fabric, ssts, smcs = build_smc_cluster(window=4)
        smcs[0].write_slot(SlotValue(1, 1, 4, b"old", 0.0))
        smcs[0].write_slot(SlotValue(5, 5, 4, b"new", 1.0))  # slot 1 again
        assert not smcs[0].has_message(0, 1)
        assert smcs[0].has_message(0, 5)

    def test_push_control_is_single_write_per_peer(self):
        sim, fabric, ssts, smcs = build_smc_cluster()
        sst = ssts[0]
        cols = smcs[0].cols
        sst.set(cols.received, 10)
        sst.set(cols.delivered, 7)
        sst.set(cols.nulls, 2)

        def proc():
            yield from smcs[0].push_control()

        before = fabric.nodes[0].writes_posted
        sim.spawn(proc())
        sim.run()
        assert fabric.nodes[0].writes_posted - before == 2  # one per peer
        assert ssts[1].read(0, cols.received) == 10
        assert ssts[1].read(0, cols.delivered) == 7
        assert ssts[1].read(0, cols.nulls) == 2

    def test_control_push_size_is_24_bytes(self):
        sim, fabric, ssts, smcs = build_smc_cluster()

        def proc():
            yield from smcs[0].push_control()

        sim.spawn(proc())
        sim.run()
        # 2 peers x 24 bytes of control span.
        assert fabric.nodes[0].bytes_posted == 48

"""Property-based failure injection: virtual synchrony invariants hold
for randomized crash times, victims and workloads."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import SpindleConfig
from repro.sim.units import ms, us
from repro.workloads import Cluster, continuous_sender


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(3, 5),
    victim_idx=st.integers(0, 4),
    crash_at_us=st.integers(200, 3000),
    count=st.integers(50, 250),
    window=st.integers(4, 10),
)
def test_crash_atomicity_property(n, victim_idx, crash_at_us, count, window):
    """For any crash time/victim: survivors install the same successor
    view and deliver identical message sequences (failure atomicity)."""
    victim = victim_idx % n
    cluster = Cluster(n, config=SpindleConfig.optimized())
    cluster.add_subgroup(message_size=256, window=window)
    cluster.enable_membership(heartbeat_period=us(100),
                              suspicion_timeout=us(500))
    cluster.build()
    views = {nid: [] for nid in cluster.node_ids}
    logs = {nid: [] for nid in cluster.node_ids}
    for nid in cluster.node_ids:
        cluster.group(nid).membership.on_new_view.append(
            lambda v, nid=nid: views[nid].append(v))
        cluster.group(nid).on_delivery(
            0, lambda d, nid=nid: logs[nid].append((d.seq, d.sender)))
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=256))
    cluster.sim.call_after(us(crash_at_us), cluster.fail_node, victim)
    cluster.run(until=ms(120))

    survivors = [nid for nid in cluster.node_ids if nid != victim]
    # Every survivor installed the same successor view...
    final_views = [views[nid][-1] for nid in survivors]
    assert all(views[nid] for nid in survivors)
    assert all(v.members == final_views[0].members for v in final_views)
    assert victim not in final_views[0].members
    # ...and delivered exactly the same sequence.
    reference = logs[survivors[0]]
    assert all(logs[nid] == reference for nid in survivors)
    # Sequence numbers strictly increase (no duplicates, no reordering).
    seqs = [s for s, _ in reference]
    assert seqs == sorted(set(seqs))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    crash_at_us=st.integers(300, 2000),
    count=st.integers(80, 200),
)
def test_leader_crash_property(crash_at_us, count):
    """Crashing the leader (node 0) at arbitrary points still converges
    to a consistent successor view led by node 1."""
    cluster = Cluster(4, config=SpindleConfig.optimized())
    cluster.add_subgroup(message_size=256, window=6)
    cluster.enable_membership(heartbeat_period=us(100),
                              suspicion_timeout=us(500))
    cluster.build()
    views = {nid: [] for nid in (1, 2, 3)}
    logs = {nid: [] for nid in (1, 2, 3)}
    for nid in (1, 2, 3):
        cluster.group(nid).membership.on_new_view.append(
            lambda v, nid=nid: views[nid].append(v))
        cluster.group(nid).on_delivery(
            0, lambda d, nid=nid: logs[nid].append((d.seq, d.sender)))
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=256))
    cluster.sim.call_after(us(crash_at_us), cluster.fail_node, 0)
    cluster.run(until=ms(120))
    for nid in (1, 2, 3):
        assert views[nid], f"survivor {nid} saw no view change"
        assert views[nid][-1].members == (1, 2, 3)
        assert views[nid][-1].leader == 1
    assert logs[1] == logs[2] == logs[3]

"""Tests for the fault-injection plane: schedule validation + JSON
round-trip, the NIC drop-reason accounting (one explicit test per reason
code), and the FaultPlane behaviours (cuts, buffering, jitter, stalls,
crash/restart) against live clusters."""

import json

import pytest

from repro.core.config import SpindleConfig
from repro.faults import (
    CrashEvent,
    FaultSchedule,
    JitterEvent,
    PartitionEvent,
    SeverEvent,
    StallEvent,
)
from repro.rdma.fabric import RdmaFabric
from repro.rdma.memory import ByteRegion
from repro.rdma.nic import (
    DROP_DST_DOWN_AT_POST,
    DROP_DST_DOWN_IN_FLIGHT,
    DROP_INJECTED_LOSS,
    DROP_PARTITION,
    DROP_REGION_DEREGISTERED,
    DROP_SRC_DOWN,
    FaultDecision,
)
from repro.sim.engine import Simulator
from repro.sim.units import ms, us
from repro.workloads import Cluster, continuous_sender


# ==========================================================================
# Schedule validation and serialization
# ==========================================================================


class TestScheduleValidation:
    def test_partition_needs_two_groups(self):
        with pytest.raises(ValueError, match="two groups"):
            PartitionEvent(at=0.0, groups=((0, 1),))

    def test_partition_groups_must_not_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            PartitionEvent(at=0.0, groups=((0, 1), (1, 2)))

    def test_heal_must_follow_cut(self):
        with pytest.raises(ValueError, match="heal_at"):
            PartitionEvent(at=1.0, groups=((0,), (1,)), heal_at=0.5)

    def test_unknown_cut_mode_rejected(self):
        with pytest.raises(ValueError, match="cut mode"):
            SeverEvent(at=0.0, src=(0,), dst=(1,), mode="teleport")

    def test_sever_src_dst_disjoint(self):
        with pytest.raises(ValueError, match="overlap"):
            SeverEvent(at=0.0, src=(0, 1), dst=(1,))

    def test_jitter_must_inject_something(self):
        with pytest.raises(ValueError, match="injects nothing"):
            JitterEvent(at=0.0, until=1.0)

    def test_jitter_loss_is_probability(self):
        with pytest.raises(ValueError, match="probability"):
            JitterEvent(at=0.0, until=1.0, loss=1.5)

    def test_jitter_rejects_loopback_links(self):
        with pytest.raises(ValueError, match="loopback"):
            JitterEvent(at=0.0, until=1.0, jitter=us(1), links=((2, 2),))

    def test_stall_duration_positive(self):
        with pytest.raises(ValueError, match="positive"):
            StallEvent(at=0.0, node=1, duration=0.0)

    def test_stall_scope_checked(self):
        with pytest.raises(ValueError, match="scope"):
            StallEvent(at=0.0, node=1, duration=1.0, scope="galaxy")

    def test_crash_restart_after_crash(self):
        with pytest.raises(ValueError, match="restart_at"):
            CrashEvent(at=2.0, node=0, restart_at=1.0)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CrashEvent(at=-1.0, node=0)

    def test_add_rejects_non_events(self):
        with pytest.raises(TypeError):
            FaultSchedule().add({"kind": "partition"})


class TestScheduleSerialization:
    def make_schedule(self):
        return (
            FaultSchedule(seed=7)
            .add(PartitionEvent(at=ms(1), groups=((0, 1), (2, 3)),
                                heal_at=ms(2)))
            .add(SeverEvent(at=ms(1), src=(0,), dst=(3,), mode="drop"))
            .add(JitterEvent(at=0.0, until=ms(5), extra_latency=us(2),
                             jitter=us(5), links=((0, 1), (1, 0))))
            .add(StallEvent(at=ms(1), node=2, duration=us(300),
                            scope="node"))
            .add(CrashEvent(at=ms(1), node=3, restart_at=ms(5)))
        )

    def test_json_round_trip_is_identity(self):
        schedule = self.make_schedule()
        clone = FaultSchedule.from_json(schedule.to_json())
        assert clone.seed == schedule.seed
        assert clone.events == schedule.events
        assert clone.to_json() == schedule.to_json()

    def test_json_carries_version_and_kinds(self):
        data = json.loads(self.make_schedule().to_json())
        assert data["version"] == 1
        assert [e["kind"] for e in data["events"]] == [
            "partition", "sever", "jitter", "stall", "crash"]

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            FaultSchedule.from_dict({"version": 99, "events": []})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSchedule.from_dict(
                {"version": 1, "events": [{"kind": "meteor", "at": 0.0}]})


# ==========================================================================
# NIC drop accounting: one explicit test per reason code
# ==========================================================================


def make_pair():
    sim = Simulator()
    fabric = RdmaFabric(sim)
    a, b = fabric.add_node(), fabric.add_node()
    src, dst = ByteRegion(8), ByteRegion(8)
    a.register(src)
    key = b.register(dst)
    qp = fabric.queue_pair(a.node_id, b.node_id)
    return sim, fabric, a, b, src, key, qp


class TestDropReasons:
    def test_src_down(self):
        sim, fabric, a, b, src, key, qp = make_pair()
        fabric.fail_node(a.node_id)
        qp.post_write(src, 0, key, 0, 1)
        sim.run()
        assert a.writes_dropped_by_reason == {DROP_SRC_DOWN: 1}
        assert a.writes_posted == 0  # never reached the NIC

    def test_dst_down_at_post(self):
        sim, fabric, a, b, src, key, qp = make_pair()
        fabric.fail_node(b.node_id)
        qp.post_write(src, 0, key, 0, 1)
        sim.run()
        assert a.writes_dropped_by_reason == {DROP_DST_DOWN_AT_POST: 1}
        assert a.writes_posted == 1  # bytes still crossed the egress link

    def test_dst_down_in_flight(self):
        sim, fabric, a, b, src, key, qp = make_pair()
        qp.post_write(src, 0, key, 0, 1)
        fabric.fail_node(b.node_id)  # dies after post, before arrival
        sim.run()
        assert a.writes_dropped_by_reason == {DROP_DST_DOWN_IN_FLIGHT: 1}

    def test_region_deregistered(self):
        sim, fabric, a, b, src, key, qp = make_pair()
        qp.post_write(src, 0, key, 0, 1)
        b.deregister(key)
        sim.run()
        # Charged to the *receiver*: its memory map razed the write.
        assert b.writes_dropped_by_reason == {DROP_REGION_DEREGISTERED: 1}

    def test_partition_drop(self):
        sim, fabric, a, b, src, key, qp = make_pair()
        a.fault_hook = lambda qp, size: FaultDecision(
            drop_reason=DROP_PARTITION)
        qp.post_write(src, 0, key, 0, 1)
        sim.run()
        assert a.writes_dropped_by_reason == {DROP_PARTITION: 1}
        assert b.writes_received == 0

    def test_injected_loss(self):
        sim, fabric, a, b, src, key, qp = make_pair()
        a.fault_hook = lambda qp, size: FaultDecision(
            drop_reason=DROP_INJECTED_LOSS)
        qp.post_write(src, 0, key, 0, 1)
        sim.run()
        assert a.writes_dropped_by_reason == {DROP_INJECTED_LOSS: 1}

    def test_per_reason_counts_sum_to_total(self):
        sim, fabric, a, b, src, key, qp = make_pair()
        fabric.fail_node(b.node_id)
        qp.post_write(src, 0, key, 0, 1)
        qp.post_write(src, 0, key, 0, 1)
        b.alive = True
        qp.post_write(src, 0, key, 0, 1)
        fabric.fail_node(b.node_id)
        sim.run()
        assert sum(a.writes_dropped_by_reason.values()) == a.writes_dropped
        assert fabric.total_writes_dropped() == 3
        assert fabric.drops_by_reason() == {
            DROP_DST_DOWN_AT_POST: 2, DROP_DST_DOWN_IN_FLIGHT: 1}

    def test_extra_latency_delays_arrival(self):
        sim, fabric, a, b, src, key, qp = make_pair()
        times = {}

        def run_once(tag, hook):
            s, f, na, nb, reg, k, q = make_pair()
            na.fault_hook = hook
            q.post_write(reg, 0, k, 0, 1)
            s.run()
            times[tag] = s.now

        run_once("plain", None)
        run_once("delayed", lambda qp, size: FaultDecision(
            extra_latency=us(50)))
        assert times["delayed"] == pytest.approx(times["plain"] + us(50))


# ==========================================================================
# FaultPlane behaviour against live clusters
# ==========================================================================


def small_cluster(n=4, count=0, seed=0, membership=None, window=10, size=512):
    cluster = Cluster(num_nodes=n, config=SpindleConfig.optimized(),
                      seed=seed)
    cluster.add_subgroup(message_size=size, window=window)
    if membership:
        cluster.enable_membership(**membership)
    cluster.build()
    logs = {nid: [] for nid in cluster.node_ids}
    for nid in cluster.node_ids:
        cluster.group(nid).on_delivery(
            0, lambda d, nid=nid: logs[nid].append((d.seq, d.sender)))
    if count:
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=count, size=size))
    return cluster, logs


class TestPlaneCuts:
    def test_buffered_partition_heals_and_delivers_everything(self):
        cluster, logs = small_cluster(4, count=40)
        cluster.faults.partition([[0, 1], [2, 3]], at=us(30),
                                 heal_at=ms(2), mode="buffer")
        cluster.run()
        assert cluster.faults.heals == 1
        assert cluster.faults.writes_held > 0
        assert cluster.faults.writes_redelivered == cluster.faults.writes_held
        expected = 40 * 4
        assert all(len(log) == expected for log in logs.values())
        reference = logs[0]
        assert all(log == reference for log in logs.values())
        # Buffered cut: nothing is *lost*.
        assert cluster.fabric.drops_by_reason().get("partition", 0) == 0

    def test_drop_partition_tags_losses(self):
        cluster, logs = small_cluster(2, count=5)
        cluster.faults.partition([[0], [1]], at=0.0, mode="drop")
        cluster.run(until=ms(5))
        drops = cluster.fabric.drops_by_reason()
        assert drops.get("partition", 0) > 0

    def test_sever_is_asymmetric(self):
        cluster, _ = small_cluster(2)
        cluster.stop()  # quiet the protocol threads; drive SSTs by hand
        cluster.faults.sever([0], [1], at=0.0, mode="drop")
        node0, node1 = cluster.fabric.nodes[0], cluster.fabric.nodes[1]
        # Writes 0->1 die, writes 1->0 still fly.
        cluster.group(0).sst.set(0, 1)
        cluster.group(1).sst.set(0, 1)
        cluster.sim.spawn(cluster.group(0).sst.push_col(0))
        cluster.sim.spawn(cluster.group(1).sst.push_col(0))
        cluster.run(until=ms(1))
        assert node0.writes_dropped_by_reason.get("partition", 0) == 1
        assert node1.writes_dropped_by_reason.get("partition", 0) == 0
        assert node0.writes_received == 1
        assert node1.writes_received == 0

    def test_held_writes_redeliver_in_post_order(self):
        cluster, _ = small_cluster(2)
        cluster.stop()
        cluster.faults.sever([0], [1], at=0.0, heal_at=ms(1), mode="buffer")
        sst0 = cluster.group(0).sst
        arrivals = []
        cluster.fabric.nodes[1].on_remote_write.append(
            lambda region, snap: arrivals.append(list(snap.data)))

        def writer():
            for value in (1, 2, 3):
                sst0.set(0, value)
                yield from sst0.push_col(0)

        cluster.sim.spawn(writer())
        cluster.run(until=ms(5))
        assert cluster.faults.writes_redelivered == 3
        assert arrivals == [[1], [2], [3]]  # FIFO per QP preserved


class TestPlaneJitterStallCrash:
    def test_jitter_slows_but_does_not_lose(self):
        plain, logs_plain = small_cluster(3, count=30, seed=1)
        plain.run()
        base_time = plain.sim.now

        jittered, logs_jit = small_cluster(3, count=30, seed=1)
        jittered.faults.jitter(until=ms(50), extra_latency=us(3),
                               jitter=us(4), at=0.0)
        jittered.run()
        assert jittered.sim.now > base_time
        assert logs_jit[0] == logs_plain[0]
        assert jittered.fabric.total_writes_dropped() == 0

    def test_jitter_links_filter(self):
        cluster, _ = small_cluster(2)
        cluster.faults.jitter(until=ms(10), extra_latency=us(5),
                              links=[(0, 1)], at=0.0)
        decide = cluster.fabric.nodes[0].fault_hook
        qp01 = cluster.fabric.queue_pair(0, 1)
        qp10 = cluster.fabric.queue_pair(1, 0)
        assert decide(qp01, 64).extra_latency == pytest.approx(us(5))
        assert decide(qp10, 64) is None

    def test_stall_freezes_then_resumes_delivery(self):
        cluster, logs = small_cluster(3, count=30)
        cluster.faults.stall(1, duration=us(500), at=ms(0.3))
        cluster.run()
        assert cluster.faults.stalls_started == 1
        assert cluster.faults.stalls_finished == 1
        assert all(len(log) == 90 for log in logs.values())

    def test_crash_then_restart_revives_nic_only(self):
        cluster, _ = small_cluster(
            3, membership=dict(heartbeat_period=us(100),
                               suspicion_timeout=us(400)))
        cluster.faults.crash(2, at=ms(1), restart_at=ms(20))
        cluster.run(until=ms(30))
        assert cluster.faults.crashes == 1
        assert cluster.faults.restarts == 1
        assert cluster.fabric.nodes[2].alive
        # The view moved on without it (re-admission is a join, not
        # automatic): survivors installed (0, 1).
        svc = cluster.group(0).membership
        assert svc.installed and svc.new_view.members == (0, 1)

    def test_apply_schedule_replays_imperative_run(self):
        cluster, logs = small_cluster(4, count=30, seed=3)
        cluster.faults.partition([[0, 1], [2, 3]], at=ms(0.5),
                                 heal_at=ms(1.5))
        cluster.faults.jitter(until=ms(3), jitter=us(2), at=0.0)
        cluster.run()
        schedule_json = cluster.faults.schedule.to_json()

        replay, logs2 = small_cluster(4, count=30, seed=3)
        replay.faults.apply(FaultSchedule.from_json(schedule_json))
        replay.run()
        assert logs2 == logs
        assert replay.faults.counters() == cluster.faults.counters()


class TestMembershipHardening:
    def test_heal_within_grace_rescinds_suspicion(self):
        cluster, _ = small_cluster(
            4, membership=dict(heartbeat_period=us(100),
                               suspicion_timeout=us(500),
                               confirmation_grace=us(600)))
        cluster.faults.partition([[0, 1], [2, 3]], at=ms(1),
                                 heal_at=ms(1.8), mode="buffer")
        cluster.run(until=ms(10))
        for nid in cluster.node_ids:
            svc = cluster.group(nid).membership
            assert not svc.installed
            assert not svc.suspected_members()
        alarms = sum(sum(cluster.group(n).membership.false_alarms.values())
                     for n in cluster.node_ids)
        assert alarms > 0

    def test_backoff_scales_effective_timeout(self):
        cluster, _ = small_cluster(
            2, membership=dict(heartbeat_period=us(100),
                               suspicion_timeout=us(400),
                               confirmation_grace=us(600),
                               suspicion_backoff=2.0))
        cluster.faults.partition([[0], [1]], at=ms(1), heal_at=ms(1.7))
        cluster.run(until=ms(5))
        svc = cluster.group(0).membership
        assert svc.effective_timeout(1) == pytest.approx(us(800))

    def test_minority_side_stalls_instead_of_split_brain(self):
        cluster, _ = small_cluster(
            5, membership=dict(heartbeat_period=us(100),
                               suspicion_timeout=us(400),
                               confirmation_grace=us(400)))
        cluster.faults.partition([[0, 1, 2], [3, 4]], at=ms(1), mode="drop")
        cluster.run(until=ms(40))
        for nid in (0, 1, 2):
            svc = cluster.group(nid).membership
            assert svc.installed and svc.new_view.members == (0, 1, 2)
        for nid in (3, 4):
            svc = cluster.group(nid).membership
            assert not svc.installed
            assert svc.minority_stalled

"""Unit tests for the simulated RDMA fabric: timing, ordering, semantics."""

import pytest

from repro.rdma import (
    ByteRegion,
    CellRegion,
    LatencyModel,
    ProtectionDomain,
    RdmaFabric,
    WorkRequest,
    post_write,
)
from repro.sim import Simulator
from repro.sim.units import us


def make_pair():
    sim = Simulator()
    fabric = RdmaFabric(sim)
    a = fabric.add_node()
    b = fabric.add_node()
    return sim, fabric, a, b


class TestLatencyModel:
    def test_figure1_calibration_points(self):
        m = LatencyModel()
        assert m.end_to_end(1) == pytest.approx(us(1.73), rel=1e-2)
        assert m.end_to_end(4096) == pytest.approx(us(2.46), rel=1e-2)

    def test_latency_nearly_flat_below_4kb(self):
        """The paper's Fig. 1 observation: latency barely grows to 4 KB."""
        m = LatencyModel()
        assert m.end_to_end(4096) / m.end_to_end(1) < 1.5

    def test_occupancy_is_bandwidth_bound_for_large_writes(self):
        m = LatencyModel()
        size = 10 * 1024 * 1024
        assert m.occupancy(size) == pytest.approx(size / m.link_bandwidth)

    def test_occupancy_has_per_op_floor(self):
        m = LatencyModel()
        assert m.occupancy(1) == m.min_op_gap


class TestByteRegion:
    def test_local_write_read_roundtrip(self):
        r = ByteRegion(64)
        r.write_local(10, b"hello")
        assert r.read(10, 5) == b"hello"

    def test_out_of_bounds_access_raises(self):
        r = ByteRegion(16)
        with pytest.raises(IndexError):
            r.write_local(12, b"too long!")
        with pytest.raises(IndexError):
            r.read(-1, 4)

    def test_snapshot_is_immutable_copy(self):
        r = ByteRegion(8)
        r.write_local(0, b"aaaa")
        snap = r.snapshot(0, 4)
        r.write_local(0, b"bbbb")
        assert snap.data == b"aaaa"

    def test_zero_size_region_rejected(self):
        with pytest.raises(ValueError):
            ByteRegion(0)


class TestCellRegion:
    def test_cells_hold_arbitrary_values(self):
        r = CellRegion([8, 8, 10240])
        r.write_local(0, 7)
        r.write_local(2, b"payload")
        assert r.read(0) == 7
        assert r.read(2) == b"payload"

    def test_size_of_spans(self):
        r = CellRegion([8, 8, 10240])
        assert r.size_of(0, 2) == 16
        assert r.size_of(0, 3) == 10256
        assert r.total_bytes == 10256

    def test_snapshot_apply_roundtrip(self):
        src = CellRegion([8, 8])
        dst = CellRegion([8, 8])
        src.write_local(0, 1)
        src.write_local(1, 2)
        dst.apply_write(src.snapshot(0, 2))
        assert dst.read(0) == 1 and dst.read(1) == 2

    def test_invalid_cell_sizes_rejected(self):
        with pytest.raises(ValueError):
            CellRegion([])
        with pytest.raises(ValueError):
            CellRegion([8, 0])


class TestWriteTiming:
    def test_write_arrives_after_wire_latency(self):
        sim, fabric, a, b = make_pair()
        src = ByteRegion(16)
        dst = ByteRegion(16)
        a.register(src)
        key = b.register(dst)
        src.write_local(0, b"x")
        qp = fabric.queue_pair(a.node_id, b.node_id)
        qp.post_write(src, 0, key, 0, 1)
        sim.run()
        expected = fabric.latency.occupancy(1) + fabric.latency.wire_latency(1)
        assert sim.now == pytest.approx(expected)
        assert dst.read(0, 1) == b"x"

    def test_egress_serialization_queues_writes(self):
        """Two large writes posted together serialize through the link."""
        sim, fabric, a, b = make_pair()
        size = 1_000_000
        src = ByteRegion(size)
        dst = ByteRegion(size)
        a.register(src)
        key = b.register(dst)
        qp = fabric.queue_pair(a.node_id, b.node_id)
        qp.post_write(src, 0, key, 0, size)
        qp.post_write(src, 0, key, 0, size)
        sim.run()
        occupancy = fabric.latency.occupancy(size)
        expected = 2 * occupancy + fabric.latency.wire_latency(size)
        assert sim.now == pytest.approx(expected)

    def test_completion_fires_at_egress_finish(self):
        sim, fabric, a, b = make_pair()
        src = ByteRegion(1024)
        dst = ByteRegion(1024)
        a.register(src)
        key = b.register(dst)
        qp = fabric.queue_pair(a.node_id, b.node_id)
        completions = []
        qp.post_write(src, 0, key, 0, 1024,
                      on_complete=lambda: completions.append(sim.now))
        sim.run()
        assert completions == [pytest.approx(fabric.latency.occupancy(1024))]


class TestOrderingGuarantees:
    def test_same_qp_writes_apply_in_post_order(self):
        """A big write followed by a tiny one must not be overtaken."""
        sim, fabric, a, b = make_pair()
        src = CellRegion([1024 * 1024, 8])
        dst = CellRegion([1024 * 1024, 8])
        a.register(src)
        key = b.register(dst)
        qp = fabric.queue_pair(a.node_id, b.node_id)

        arrivals = []
        b.on_remote_write.append(lambda region, snap: arrivals.append(snap.offset))

        src.write_local(0, b"big")
        src.write_local(1, 42)
        qp.post_write(src, 0, key, 0, 1)  # 1 MB cell
        qp.post_write(src, 1, key, 1, 1)  # 8 B guard
        sim.run()
        assert arrivals == [0, 1]

    def test_memory_fence_guard_pattern(self):
        """Derecho's guarded-data idiom: if the guard is visible, so is
        the data it guards (paper §2.2)."""
        sim, fabric, a, b = make_pair()
        src = CellRegion([4096, 8])
        dst = CellRegion([4096, 8])
        a.register(src)
        key = b.register(dst)
        qp = fabric.queue_pair(a.node_id, b.node_id)

        violations = []

        def check(region, snap):
            # Whenever the guard cell updates, data must already be there.
            if snap.offset == 1 and region.read(0) != "DATA":
                violations.append(sim.now)

        b.on_remote_write.append(check)

        src.write_local(0, "DATA")
        qp.post_write(src, 0, key, 0, 1)
        src.write_local(1, 1)
        qp.post_write(src, 1, key, 1, 1)
        sim.run()
        assert violations == []

    def test_snapshot_taken_at_post_time(self):
        sim, fabric, a, b = make_pair()
        src = CellRegion([8])
        dst = CellRegion([8])
        a.register(src)
        key = b.register(dst)
        qp = fabric.queue_pair(a.node_id, b.node_id)
        src.write_local(0, "old")
        qp.post_write(src, 0, key, 0, 1)
        src.write_local(0, "new")  # mutate after post, before arrival
        sim.run()
        assert dst.read(0) == "old"


class TestFailures:
    def test_write_to_dead_node_dropped(self):
        sim, fabric, a, b = make_pair()
        src = ByteRegion(8)
        dst = ByteRegion(8)
        a.register(src)
        key = b.register(dst)
        fabric.fail_node(b.node_id)
        qp = fabric.queue_pair(a.node_id, b.node_id)
        src.write_local(0, b"x")
        qp.post_write(src, 0, key, 0, 1)
        sim.run()
        assert dst.read(0, 1) == b"\x00"
        assert a.writes_dropped == 1

    def test_write_from_dead_node_dropped(self):
        sim, fabric, a, b = make_pair()
        src = ByteRegion(8)
        dst = ByteRegion(8)
        a.register(src)
        key = b.register(dst)
        fabric.fail_node(a.node_id)
        qp = fabric.queue_pair(a.node_id, b.node_id)
        qp.post_write(src, 0, key, 0, 1)
        sim.run()
        assert b.writes_received == 0

    def test_in_flight_write_to_node_that_dies_is_dropped(self):
        sim, fabric, a, b = make_pair()
        src = ByteRegion(8)
        dst = ByteRegion(8)
        a.register(src)
        key = b.register(dst)
        qp = fabric.queue_pair(a.node_id, b.node_id)
        src.write_local(0, b"x")
        qp.post_write(src, 0, key, 0, 1)
        fabric.fail_node(b.node_id)  # dies while the write is in flight
        sim.run()
        assert dst.read(0, 1) == b"\x00"

    def test_write_to_deregistered_region_dropped(self):
        sim, fabric, a, b = make_pair()
        src = ByteRegion(8)
        dst = ByteRegion(8)
        a.register(src)
        key = b.register(dst)
        qp = fabric.queue_pair(a.node_id, b.node_id)
        qp.post_write(src, 0, key, 0, 1)
        b.deregister(key)
        sim.run()
        assert b.writes_dropped == 1


class TestFabricApi:
    def test_no_loopback_qp(self):
        sim, fabric, a, b = make_pair()
        with pytest.raises(ValueError):
            fabric.queue_pair(a.node_id, a.node_id)

    def test_qp_cached_per_direction(self):
        sim, fabric, a, b = make_pair()
        ab = fabric.queue_pair(a.node_id, b.node_id)
        ba = fabric.queue_pair(b.node_id, a.node_id)
        assert ab is fabric.queue_pair(a.node_id, b.node_id)
        assert ab is not ba

    def test_duplicate_node_id_rejected(self):
        sim = Simulator()
        fabric = RdmaFabric(sim)
        fabric.add_node(5)
        with pytest.raises(ValueError):
            fabric.add_node(5)

    def test_counters_accumulate(self):
        sim, fabric, a, b = make_pair()
        src = ByteRegion(64)
        dst = ByteRegion(64)
        a.register(src)
        key = b.register(dst)
        qp = fabric.queue_pair(a.node_id, b.node_id)
        for _ in range(3):
            qp.post_write(src, 0, key, 0, 16)
        sim.run()
        assert a.writes_posted == 3
        assert a.bytes_posted == 48
        assert b.writes_received == 3
        assert b.bytes_received == 48
        assert fabric.total_writes_posted() == 3
        assert fabric.total_bytes_posted() == 48


class TestVerbsFacade:
    def test_post_write_via_work_request(self):
        sim, fabric, a, b = make_pair()
        pd_a = ProtectionDomain(fabric, a)
        pd_b = ProtectionDomain(fabric, b)
        mr_a = pd_a.alloc_buffer(32)
        mr_b = pd_b.alloc_buffer(32)
        mr_a.region.write_local(0, b"ping")
        qp = pd_a.queue_pair(b.node_id)
        post_write(qp, WorkRequest(mr_a, 0, mr_b, 8, 4))
        sim.run()
        assert mr_b.region.read(8, 4) == b"ping"

    def test_wrong_node_buffers_rejected(self):
        sim, fabric, a, b = make_pair()
        pd_a = ProtectionDomain(fabric, a)
        pd_b = ProtectionDomain(fabric, b)
        mr_a = pd_a.alloc_buffer(32)
        mr_b = pd_b.alloc_buffer(32)
        qp = pd_a.queue_pair(b.node_id)
        with pytest.raises(ValueError):
            post_write(qp, WorkRequest(mr_b, 0, mr_b, 0, 4))
        with pytest.raises(ValueError):
            post_write(qp, WorkRequest(mr_a, 0, mr_a, 0, 4))

"""Unit tests for the SST layer: layout, replication, monotonicity,
push semantics and the guarded-value idiom."""

import pytest

from repro.rdma import RdmaFabric
from repro.sim import Simulator
from repro.sst import SST, GuardedValue, SSTLayout, wire_ssts


def build_cluster(n, layout_fn):
    """n nodes, each with an SST replica using layout_fn(layout)."""
    sim = Simulator()
    fabric = RdmaFabric(sim)
    nodes = [fabric.add_node() for _ in range(n)]
    ssts = {}
    for node in nodes:
        layout = SSTLayout()
        layout_fn(layout)
        ssts[node.node_id] = SST(layout, fabric, node, [x.node_id for x in nodes])
    wire_ssts(ssts)
    return sim, fabric, ssts


def simple_layout(layout):
    layout.counter("received_num")
    layout.counter("delivered_num")


def run_push(sim, sst, lo, hi, targets=None):
    """Drive a push generator inside a throwaway process."""

    def proc():
        yield from sst.push(lo, hi, targets)

    sim.spawn(proc())
    sim.run()


class TestLayout:
    def test_column_indices_in_order(self):
        layout = SSTLayout()
        a = layout.counter("a")
        b = layout.flag("b")
        c = layout.slot("c", 1024)
        assert (a, b, c) == (0, 1, 2)
        assert layout.index_of("b") == 1

    def test_cell_sizes_and_row_bytes(self):
        layout = SSTLayout()
        layout.counter("r")
        layout.counter("d")
        layout.slot("s", 10240)
        assert layout.cell_sizes == (8, 8, 10248)
        assert layout.row_bytes == 10264

    def test_paper_row_size_formula(self):
        """§4.1.2: slots take n*w*(m+8) bytes; per row that is w*(m+8)."""
        w, m = 100, 10240
        layout = SSTLayout()
        layout.counter("r")
        layout.counter("d")
        for i in range(w):
            layout.slot(f"s{i}", m)
        assert layout.row_bytes == 16 + w * (m + 8)

    def test_duplicate_names_rejected(self):
        layout = SSTLayout()
        layout.counter("x")
        with pytest.raises(ValueError):
            layout.counter("x")

    def test_frozen_layout_rejects_columns(self):
        layout = SSTLayout()
        layout.counter("x")
        layout.freeze()
        with pytest.raises(RuntimeError):
            layout.counter("y")

    def test_initial_values(self):
        layout = SSTLayout()
        layout.counter("c")          # default -1
        layout.counter("z", initial=0)
        layout.flag("f")
        assert layout.initial_values() == [-1, 0, False]


class TestSSTBasics:
    def test_rows_start_at_initial_values(self):
        sim, fabric, ssts = build_cluster(3, simple_layout)
        for sst in ssts.values():
            for owner in sst.members:
                assert sst.read(owner, 0) == -1
                assert sst.read(owner, 1) == -1

    def test_local_set_not_visible_remotely_before_push(self):
        sim, fabric, ssts = build_cluster(2, simple_layout)
        ssts[0].set(0, 5)
        assert ssts[0].read_own(0) == 5
        assert ssts[1].read(0, 0) == -1

    def test_push_replicates_to_targets(self):
        sim, fabric, ssts = build_cluster(3, simple_layout)
        ssts[0].set(0, 7)
        ssts[0].set(1, 3)
        run_push(sim, ssts[0], 0, 2)
        assert ssts[1].read(0, 0) == 7
        assert ssts[1].read(0, 1) == 3
        assert ssts[2].read(0, 0) == 7

    def test_push_to_subset_only(self):
        """Updates for a subgroup go only to subgroup members (§2.2)."""
        sim, fabric, ssts = build_cluster(3, simple_layout)
        ssts[0].set(0, 9)
        run_push(sim, ssts[0], 0, 1, targets=[1])
        assert ssts[1].read(0, 0) == 9
        assert ssts[2].read(0, 0) == -1

    def test_push_charges_post_overhead_per_target(self):
        sim, fabric, ssts = build_cluster(4, simple_layout)
        ssts[0].set(0, 1)

        elapsed = {}

        def proc():
            start = sim.now
            yield from ssts[0].push(0, 1)  # 3 remote targets
            elapsed["cpu"] = sim.now - start

        sim.spawn(proc())
        sim.run()
        assert elapsed["cpu"] == pytest.approx(3 * fabric.latency.post_overhead)
        assert ssts[0].pushes_posted == 3

    def test_counter_monotonicity_enforced(self):
        sim, fabric, ssts = build_cluster(2, simple_layout)
        ssts[0].set(0, 5)
        with pytest.raises(ValueError, match="must not decrease"):
            ssts[0].set(0, 4)

    def test_flag_cannot_reset(self):
        def layout_fn(layout):
            layout.flag("suspected")

        sim, fabric, ssts = build_cluster(2, layout_fn)
        ssts[0].set(0, True)
        with pytest.raises(ValueError, match="must not reset"):
            ssts[0].set(0, False)

    def test_local_node_must_be_member(self):
        sim = Simulator()
        fabric = RdmaFabric(sim)
        node = fabric.add_node()
        layout = SSTLayout()
        layout.counter("c")
        with pytest.raises(ValueError):
            SST(layout, fabric, node, [node.node_id + 1])

    def test_bad_push_span_rejected(self):
        sim, fabric, ssts = build_cluster(2, simple_layout)
        with pytest.raises(IndexError):
            list(ssts[0].push(1, 1))
        with pytest.raises(IndexError):
            list(ssts[0].push(0, 99))

    def test_column_reads_across_rows(self):
        sim, fabric, ssts = build_cluster(3, simple_layout)
        for i in range(3):
            ssts[i].set(0, i * 10)
            run_push(sim, ssts[i], 0, 1)
        assert ssts[0].column(0) == [0, 10, 20]
        assert ssts[0].column(0, owners=[2, 1]) == [20, 10]

    def test_format_table_contains_all_rows(self):
        sim, fabric, ssts = build_cluster(3, simple_layout)
        text = ssts[0].format_table()
        assert "received_num" in text
        assert text.count("\n") >= 4


class TestMonotonicVisibility:
    def test_sequence_of_pushes_seen_in_order(self):
        """A peer observes a non-decreasing sequence of counter values
        (the property monotonic predicates rely on, §2.4)."""
        sim, fabric, ssts = build_cluster(2, simple_layout)
        seen = []
        node1 = fabric.nodes[1]
        node1.on_remote_write.append(
            lambda region, snap: seen.append(ssts[1].read(0, 0))
        )

        def writer():
            for value in range(10):
                ssts[0].set(0, value)
                yield from ssts[0].push(0, 1)
                yield 1e-7

        sim.spawn(writer())
        sim.run()
        assert seen == sorted(seen)
        assert seen[-1] == 9

    def test_batched_push_skips_intermediate_values(self):
        """Batching acks = pushing only the final counter value (§3.2)."""
        sim, fabric, ssts = build_cluster(2, simple_layout)
        ssts[0].set(0, 3)
        ssts[0].set(0, 9)  # several local increments, one push
        run_push(sim, ssts[0], 0, 1)
        assert ssts[1].read(0, 0) == 9


class TestGuardedValue:
    def layout_fn(self, layout):
        self.cols = GuardedValue.declare(layout, "changes", size=256)

    def test_publish_and_read(self):
        sim, fabric, ssts = build_cluster(2, self.layout_fn)
        data_col, guard_col = self.cols
        gv0 = GuardedValue(ssts[0], data_col, guard_col)
        gv1 = GuardedValue(ssts[1], data_col, guard_col)

        def proc():
            version = yield from gv0.publish(("remove", 2))
            assert version == 0

        sim.spawn(proc())
        sim.run()
        version, value = gv1.read(0)
        assert version == 0
        assert value == ("remove", 2)

    def test_guard_never_visible_before_data(self):
        sim, fabric, ssts = build_cluster(2, self.layout_fn)
        data_col, guard_col = self.cols
        gv0 = GuardedValue(ssts[0], data_col, guard_col)
        gv1 = GuardedValue(ssts[1], data_col, guard_col)
        violations = []

        def check(region, snap):
            version, value = gv1.read(0)
            if version >= 0 and value is None:
                violations.append(sim.now)

        fabric.nodes[1].on_remote_write.append(check)

        def proc():
            for i in range(5):
                yield from gv0.publish(f"payload-{i}")

        sim.spawn(proc())
        sim.run()
        assert violations == []
        assert gv1.read(0) == (4, "payload-4")

"""Tests for delivery-path behaviour: upcall delays (§3.5), batched
upcalls, and the memcpy send/delivery modes (§3.1, §4.4)."""

import pytest

from repro.core.config import SpindleConfig, TimingModel
from repro.sim.units import ms, us
from repro.workloads import Cluster, continuous_sender


def throughput(config, timing=None, n=4, count=80, size=10240, window=50):
    cluster = Cluster(num_nodes=n, config=config, timing=timing)
    cluster.add_subgroup(message_size=size, window=window)
    cluster.build()
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=size))
    cluster.run_to_quiescence(max_time=30.0)
    cluster.assert_all_delivered(0, per_sender=count)
    return cluster.aggregate_throughput(0)


class TestUpcallDelays:
    """§3.5: the predicate thread delivers in the critical path, so slow
    upcalls throttle the whole pipeline."""

    def test_slow_upcalls_degrade_throughput_progressively(self):
        base = throughput(SpindleConfig.optimized(),
                          TimingModel(delivery_upcall=us(1)), count=60)
        slow = throughput(SpindleConfig.optimized(),
                          TimingModel(delivery_upcall=us(100)), count=30)
        assert slow < 0.35 * base  # paper: ~90 % loss at 100 µs

    def test_1ms_upcall_degenerates_to_one_message_per_delay(self):
        """Paper: for large delays, performance degenerates to one
        message delivered per delay time."""
        n, count, size = 3, 12, 10240
        cluster = Cluster(num_nodes=n, config=SpindleConfig.optimized(),
                          timing=TimingModel(delivery_upcall=ms(1)))
        cluster.add_subgroup(message_size=size, window=20)
        cluster.build()
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=count, size=size))
        cluster.run_to_quiescence(max_time=60.0)
        stats = cluster.group(0).stats(0)
        span = stats.last_delivery_time - stats.first_delivery_time
        rate = (stats.delivered - 1) / span  # messages per second
        assert rate == pytest.approx(1000.0, rel=0.2)

    def test_batched_upcall_mitigates_slow_processing(self):
        """§3.5 option 1: if a batch costs base + small per-message, the
        pipeline recovers most of the loss."""
        timing = TimingModel(delivery_upcall=us(20),
                             batched_upcall_base=us(20),
                             batched_upcall_per_message=us(0.5))
        per_message = throughput(SpindleConfig.optimized(), timing, count=40)
        batched = throughput(
            SpindleConfig.optimized().with_(batched_upcall=True), timing,
            count=40)
        assert batched > 1.5 * per_message


class TestMemcpyModel:
    def test_latency_flat_for_small_sizes(self):
        """Fig. 14: memcpy latency remains low up to a few KB."""
        t = TimingModel()
        assert t.memcpy_time(10 * 1024) < us(1)
        assert t.memcpy_time(1024) / t.memcpy_time(1) < 2.0

    def test_latency_deteriorates_past_cache_boundary(self):
        t = TimingModel()
        small_bw = t.memcpy_bandwidth(64 * 1024)
        large_bw = t.memcpy_bandwidth(16 * 1024 * 1024)
        assert large_bw < 0.5 * small_bw

    def test_bandwidth_monotone_regions(self):
        t = TimingModel()
        sizes = [2 ** k for k in range(6, 25)]
        times = [t.memcpy_time(s) for s in sizes]
        assert times == sorted(times)


class TestMemcpyPipeline:
    def test_copy_modes_reduce_throughput_moderately(self):
        """§4.4 / Fig. 15: with memcpy on both paths, 10 KB throughput
        declines but stays within ~25 % of the in-place result."""
        in_place = throughput(SpindleConfig.optimized(), count=60)
        copying = throughput(
            SpindleConfig.optimized().with_(copy_on_send=True,
                                            copy_on_delivery=True),
            count=60)
        assert copying < in_place
        assert copying > 0.6 * in_place

    def test_tiny_messages_unaffected_by_memcpy(self):
        """§4.4: for 1 B messages the copies are negligible."""
        in_place = throughput(SpindleConfig.optimized(), size=1, count=60)
        copying = throughput(
            SpindleConfig.optimized().with_(copy_on_send=True,
                                            copy_on_delivery=True),
            size=1, count=60)
        assert copying > 0.9 * in_place

    def test_copy_modes_preserve_correctness(self):
        config = SpindleConfig.optimized().with_(copy_on_send=True,
                                                 copy_on_delivery=True)
        cluster = Cluster(num_nodes=3, config=config)
        cluster.add_subgroup(message_size=1024, window=10)
        cluster.build()
        log = {n: [] for n in cluster.node_ids}
        for n in cluster.node_ids:
            cluster.group(n).on_delivery(
                0, lambda d, n=n: log[n].append((d.seq, d.sender, d.payload)))
        for n in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(n, 0), count=25, size=1024,
                payload_fn=lambda k, n=n: b"%d:%d" % (n, k)))
        cluster.run_to_quiescence()
        logs = list(log.values())
        assert all(l == logs[0] for l in logs)
        assert len(logs[0]) == 75

"""Tests for the protocol event tracer."""

import pytest

from repro.analysis import Tracer
from repro.core.config import SpindleConfig
from repro.workloads import Cluster, continuous_sender


def traced_cluster(count=10):
    cluster = Cluster(3, config=SpindleConfig.optimized())
    cluster.add_subgroup(message_size=256, window=4)
    cluster.build()
    tracer = Tracer(cluster)
    tracer.attach()
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=256))
    cluster.run_to_quiescence()
    return cluster, tracer


class TestTracer:
    def test_records_writes_and_deliveries(self):
        cluster, tracer = traced_cluster()
        counts = tracer.counts()
        assert counts["deliver"] == 3 * 30  # every node delivers all
        assert counts["write"] > 0

    def test_events_time_ordered(self):
        _, tracer = traced_cluster()
        times = [e.time for e in tracer.events]
        assert times == sorted(times)

    def test_select_filters(self):
        _, tracer = traced_cluster()
        node0 = tracer.select(node=0)
        assert node0 and all(e.node == 0 for e in node0)
        deliveries = tracer.select(kind="deliver", node=1)
        assert len(deliveries) == 30
        late = tracer.select(since=tracer.events[-1].time)
        assert len(late) >= 1

    def test_render_limits_output(self):
        _, tracer = traced_cluster()
        text = tracer.render(limit=5)
        assert "more)" in text
        assert len(text.splitlines()) == 6

    def test_capacity_drops_beyond_limit(self):
        cluster = Cluster(2, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=128, window=4)
        cluster.build()
        tracer = Tracer(cluster, capacity=10)
        tracer.attach()
        for nid in cluster.node_ids:
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=20, size=128))
        cluster.run_to_quiescence()
        assert len(tracer.events) == 10
        assert tracer.dropped > 0
        assert "dropped" in tracer.render()

    def test_double_attach_rejected(self):
        cluster = Cluster(2)
        cluster.add_subgroup(message_size=128, window=4)
        cluster.build()
        tracer = Tracer(cluster)
        tracer.attach()
        with pytest.raises(RuntimeError, match="already attached"):
            tracer.attach()

    def test_manual_record(self):
        cluster = Cluster(2)
        cluster.add_subgroup(message_size=128, window=4)
        cluster.build()
        tracer = Tracer(cluster)
        tracer.record(1e-6, 0, "custom", "application checkpoint")
        assert tracer.counts() == {"custom": 1}
        assert "checkpoint" in str(tracer.events[0])

"""Cross-feature integration tests: mixed delivery modes, persistence
alongside plain subgroups, stacked config options."""

import pytest

from repro.core.config import SpindleConfig
from repro.dds import (
    DdsDomain,
    ExternalClient,
    QosLevel,
    QosProfile,
    TCP_TRANSPORT,
)
from repro.workloads import Cluster, continuous_sender


class TestMixedSubgroupModes:
    def test_atomic_unordered_and_persistent_side_by_side(self):
        cluster = Cluster(3, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=256, window=6)                  # sg0 atomic
        cluster.add_subgroup(message_size=256, window=6,
                             delivery_mode="unordered")                   # sg1
        cluster.add_subgroup(message_size=256, window=6, persistent=True)  # sg2
        cluster.build()
        for sg in range(3):
            for nid in cluster.node_ids:
                cluster.spawn_sender(continuous_sender(
                    cluster.mc(nid, sg), count=15, size=256))
        cluster.run_to_quiescence(max_time=30.0)
        for sg in range(3):
            cluster.assert_all_delivered(sg, per_sender=15)
        # Persistence wired for sg2 only.
        assert list(cluster.group(0).persistence) == [2]
        assert len(cluster.group(0).persistence[2].log) == 45

    def test_unordered_subgroup_sends_no_nulls(self):
        """Null-sends are an ordering mechanism; unordered mode must not
        emit them even when the config enables them."""
        cluster = Cluster(3, config=SpindleConfig.optimized())
        cluster.add_subgroup(message_size=256, window=6,
                             delivery_mode="unordered")
        cluster.build()
        # Only node 0 sends: in atomic mode this would demand nulls.
        cluster.spawn_sender(continuous_sender(
            cluster.mc(0, 0), count=25, size=256))
        cluster.run_to_quiescence()
        for nid in cluster.node_ids:
            assert cluster.group(nid).stats(0).nulls_sent == 0
            assert cluster.group(nid).stats(0).delivered == 25

    def test_all_options_stacked(self):
        """Everything at once: batching + nulls + early release +
        batched upcalls + both memcpy modes, on a persistent subgroup."""
        config = SpindleConfig.optimized().with_(
            batched_upcall=True, copy_on_send=True, copy_on_delivery=True)
        cluster = Cluster(4, config=config)
        cluster.add_subgroup(message_size=1024, window=8, persistent=True)
        cluster.build()
        logs = {nid: [] for nid in cluster.node_ids}
        for nid in cluster.node_ids:
            cluster.group(nid).on_delivery(
                0, lambda d, nid=nid: logs[nid].append((d.seq, d.payload)))
            cluster.spawn_sender(continuous_sender(
                cluster.mc(nid, 0), count=20, size=1024,
                payload_fn=lambda k, nid=nid: b"%d/%d" % (nid, k)))
        cluster.run_to_quiescence(max_time=30.0)
        reference = logs[0]
        assert len(reference) == 80
        assert all(logs[nid] == reference for nid in cluster.node_ids)
        durable = cluster.group(0).persistence[0]
        assert len(durable.log) == 80


class TestDdsCombinations:
    def test_external_client_on_logged_topic(self):
        """Relayed publishes land in every subscriber's SSD log."""
        domain = DdsDomain(3, config=SpindleConfig.optimized())
        topic = domain.create_topic(
            "blackbox", publishers=[0], subscribers=[1, 2],
            qos=QosProfile(QosLevel.LOGGED), message_size=256, window=8)
        domain.build()
        domain.participant(1).create_reader(topic)
        domain.participant(2).create_reader(topic)
        client = ExternalClient(domain, relay_node=0,
                                transport=TCP_TRANSPORT)
        domain.spawn(client.publisher(
            topic, [b"entry-%02d" % k for k in range(10)]))
        domain.run_to_quiescence()
        for nid in (1, 2):
            log = domain.ssd_log(nid)
            assert [d for _, d in log.replay(topic.topic_id)] == [
                b"entry-%02d" % k for k in range(10)]

    def test_mixed_qos_topics_one_domain(self):
        domain = DdsDomain(4, config=SpindleConfig.optimized())
        topics = {
            level: domain.create_topic(
                level.name.lower(), publishers=[0],
                subscribers=[1, 2, 3], qos=QosProfile(level),
                message_size=256, window=8)
            for level in QosLevel
        }
        domain.build()
        readers = {
            level: domain.participant(1).create_reader(topic)
            for level, topic in topics.items()
        }
        for level, topic in topics.items():
            writer = domain.participant(0).create_writer(topic)

            def pub(writer=writer, level=level):
                for k in range(8):
                    yield from writer.write(b"%s-%d" % (
                        level.name.encode(), k))
                writer.finish()

            domain.spawn(pub())
        domain.run_to_quiescence(max_time=30.0)
        for level, reader in readers.items():
            assert reader.received == 8, level

    def test_baseline_dds_still_correct(self):
        """The pre-Spindle configuration is slow, not wrong."""
        domain = DdsDomain(3, config=SpindleConfig.baseline())
        topic = domain.create_topic(
            "t", publishers=[0, 1], subscribers=[2],
            qos=QosProfile(QosLevel.ATOMIC), message_size=128, window=6)
        domain.build()
        got = []
        domain.participant(2).create_reader(
            topic, listener=lambda s: got.append((s.seq, s.value)))
        for p in (0, 1):
            writer = domain.participant(p).create_writer(topic)

            def pub(writer=writer, p=p):
                for k in range(10):
                    yield from writer.write(b"%d:%d" % (p, k))
                writer.finish()

            domain.spawn(pub())
        domain.run_to_quiescence(max_time=30.0)
        assert len(got) == 20
        seqs = [s for s, _ in got]
        assert seqs == sorted(seqs)

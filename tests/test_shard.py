"""Sharded service plane: map determinism, router admission/retry,
rebalance hand-off, and chaos-schedule replay (docs/SHARDING.md).

The load-bearing claims pinned here:

* the shard map is a pure function of ``(seed, shards, subgroups)`` —
  two routers derive byte-identical placement with no coordination;
* ``with_assignment`` moves exactly the named shard (a flip that
  silently relocated others would strand their keys — regression for
  the capacity-greedy/override interaction);
* admission control rejects honestly (bounded queue, SST-window
  congestion) and the deadline path times out queued requests;
* a gateway crash mid-stream loses no accepted request: the router
  re-routes, replays idempotently, and rid dedup keeps the state
  transition exactly-once;
* the rebalance hand-off transfers with CRC validation and commits
  only on cross-replica checksum agreement;
* the two shard chaos scenarios replay identically from the imperative
  fault calls and from their serialized JSON schedule.
"""

import pytest

from repro.core.config import SpindleConfig
from repro.core.membership import SubgroupSpec, View
from repro.faults import FaultSchedule
from repro.faults.scenarios import run_scenario
from repro.shard import RouterConfig, ShardMap, key_hash
from repro.sim.units import ms, us
from repro.workloads import Cluster, SloStats, open_loop_client


def make_view(view_id, members, subgroup_members):
    specs = tuple(
        SubgroupSpec.of(subgroup_id=i, members=m, window=8, message_size=256)
        for i, m in enumerate(subgroup_members))
    return View(view_id, tuple(members), specs)


# ===========================================================================
# ShardMap
# ===========================================================================


class TestShardMap:
    def test_same_inputs_identical_bytes(self):
        a = ShardMap(8, [0, 1, 2], seed=5)
        b = ShardMap(8, [2, 1, 0], seed=5)  # order-insensitive
        assert a.placement_bytes() == b.placement_bytes()
        assert a.digest() == b.digest()
        assert a.placement() == b.placement()

    def test_seed_reaches_both_hash_layers(self):
        a = ShardMap(8, [0, 1, 2], seed=1)
        b = ShardMap(8, [0, 1, 2], seed=2)
        assert a.digest() != b.digest()
        key = b"some-key"
        assert key_hash(key, 1) != key_hash(key, 2)

    def test_key_to_shard_ignores_membership(self):
        """Consistent-hash ring depends only on (seed, shards, vnodes):
        subgroup churn never moves a key between shards."""
        a = ShardMap(16, [0, 1, 2, 3], seed=9)
        b = ShardMap(16, [0, 7], seed=9)
        keys = [b"k%d" % i for i in range(200)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_placement_balanced(self):
        for seed in range(6):
            m = ShardMap(8, [0, 1, 2, 3], seed=seed)
            loads = {}
            for shard, sg in m.placement().items():
                loads[sg] = loads.get(sg, 0) + 1
            assert max(loads.values()) <= 2, (seed, loads)  # ceil(8/4)

    def test_lost_subgroup_movement_is_bounded(self):
        """A vanished subgroup's shards must move; the capacity rebound
        (ceil(8/4) -> ceil(8/3)) may displace a few survivors, but most
        of the map stays put (approximate minimal movement)."""
        for seed in range(8):
            full = ShardMap(8, [0, 1, 2, 3], seed=seed)
            shrunk = ShardMap(8, [0, 1, 3], seed=seed)
            moved = set(full.moved_shards(shrunk))
            lost = set(full.shards_of_subgroup(2))
            assert lost <= moved, (seed, moved, lost)
            assert len(moved) <= len(lost) + 2, (seed, moved, lost)
            assert 2 not in set(shrunk.placement().values())

    def test_with_assignment_moves_exactly_one_shard(self):
        """Regression: the capacity-bounded greedy must not let an
        override perturb the base placement of *other* shards."""
        m = ShardMap(6, [0, 1, 2], seed=0)
        for shard in range(6):
            for target in (0, 1, 2):
                flipped = m.with_assignment(shard, target)
                expected = [] if m.subgroup_of(shard) == target else [shard]
                assert m.moved_shards(flipped) == expected
                assert flipped.version == m.version + 1

    def test_rederive_pins_version_to_view_and_is_deterministic(self):
        m = ShardMap(8, [0, 1], seed=4)
        view = make_view(3, [0, 1, 2, 3], [[0, 1], [2, 3]])
        a, b = m.rederive(view), m.rederive(view)
        assert a.version == 3
        assert a.placement_bytes() == b.placement_bytes()

    def test_rederive_drops_vanished_subgroups_and_stale_overrides(self):
        m = ShardMap(8, [0, 1], seed=4).with_assignment(5, 1)
        view = make_view(2, [0, 1], [[0, 1]])  # subgroup 1 gone
        nxt = m.rederive(view)
        assert nxt.subgroup_ids == (0,)
        assert nxt.overrides == {}
        assert all(sg == 0 for sg in nxt.placement().values())

    def test_rederive_requires_a_serviceable_subgroup(self):
        m = ShardMap(4, [0], seed=0)
        view = make_view(1, [0, 1], [[0, 1]])
        with pytest.raises(ValueError):
            m.rederive(view, serviceable_ids=[])

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(0, [0])
        with pytest.raises(ValueError):
            ShardMap(4, [])
        with pytest.raises(ValueError):
            ShardMap(4, [0], overrides={9: 0})
        with pytest.raises(ValueError):
            ShardMap(4, [0], overrides={0: 5})


# ===========================================================================
# Router: admission control, deadlines, dedup
# ===========================================================================


def build_plane(num_nodes=4, num_shards=2, num_subgroups=2, seed=2,
                config=None, **shard_kw):
    cluster = Cluster(num_nodes, config=SpindleConfig.optimized(), seed=seed)
    cluster.add_shards(num_shards=num_shards, replication=2,
                       num_subgroups=num_subgroups, window=8,
                       message_size=256, **shard_kw)
    cluster.build()
    return cluster, cluster.router(config)


class TestRouterAdmission:
    def test_window_saturated_rejects_and_client_gives_up(self):
        cluster, router = build_plane(
            config=RouterConfig(congestion_threshold=0.0, max_retries=3))
        outcomes = []

        def client():
            out = yield from router.request("put", b"k", b"v")
            outcomes.append(out)

        cluster.spawn_sender(client())
        cluster.run_to_quiescence(max_time=1.0)
        assert outcomes[0].status == "rejected"
        assert outcomes[0].attempts == 4  # 1 + max_retries
        assert router.counters.rejected["window_saturated"] == 3
        assert router.counters.client_gaveup == 1
        assert router.counters.accepted == 0

    def test_queue_full_rejects_when_frozen(self):
        cluster, router = build_plane(
            config=RouterConfig(queue_depth=2, max_retries=1))
        shard = router.map.shard_of(b"k0")
        router.freeze(shard)
        outcomes = []

        def client(i):
            out = yield from router.request("put", b"k0", b"v%d" % i)
            outcomes.append((i, out.status))

        for i in range(4):
            cluster.spawn_sender(client(i))
        cluster.run(until=ms(1))
        statuses = sorted(s for _i, s in outcomes)
        assert statuses == ["rejected", "rejected"]  # beyond depth 2
        assert router.counters.rejected["queue_full"] >= 2
        router.unfreeze(shard)
        cluster.run_to_quiescence(max_time=1.0)
        assert sum(1 for _i, s in outcomes if s == "ok") == 2

    def test_deadline_expires_queued_requests(self):
        cluster, router = build_plane()
        shard = router.map.shard_of(b"k0")
        router.freeze(shard)
        outcomes = []

        def client():
            out = yield from router.request(
                "put", b"k0", b"v", deadline=cluster.sim.now + us(100))
            outcomes.append(out)

        def unfreezer():
            yield us(500)  # past the deadline
            router.unfreeze(shard)

        cluster.spawn_sender(client())
        cluster.spawn_sender(unfreezer())
        cluster.run_to_quiescence(max_time=1.0)
        assert outcomes[0].status == "timeout"
        assert router.counters.timeouts == 1

    def test_rid_dedup_applies_once(self):
        cluster, router = build_plane()
        service = router.service
        sg = router.map.subgroup_of_key(b"dup-key")
        replica = service.gateway_replica(sg)
        results = []

        def submitter():
            first = yield from replica.put_req(42, b"dup-key", b"v1")
            second = yield from replica.put_req(42, b"dup-key", b"v2")
            results.extend([first, second])

        cluster.spawn_sender(submitter())
        cluster.run_to_quiescence(max_time=1.0)
        assert results[1] == "duplicate"
        assert replica.duplicates_skipped == 1
        assert replica.data[b"dup-key"] == b"v1"  # applied exactly once

    def test_reads_and_stale_reads(self):
        cluster, router = build_plane()
        seen = {}

        def client():
            yield from router.request("put", b"rk", b"rv")
            out = yield from router.request("get", b"rk")
            seen["sync"] = out.value
            seen["stale"] = router.stale_read(b"rk")

        cluster.spawn_sender(client())
        cluster.run_to_quiescence(max_time=1.0)
        assert seen["sync"] == b"rv"
        assert seen["stale"] == b"rv"
        assert router.counters.stale_reads == 1


# ===========================================================================
# Rebalance hand-off
# ===========================================================================


class TestRebalance:
    def test_migration_crc_checksum_and_commit(self):
        cluster, router = build_plane(num_nodes=4, num_shards=4,
                                      num_subgroups=2, seed=1)
        service = router.service
        records = []

        def run():
            for i in range(30):
                yield from router.request("put", b"mk%d" % i, b"mv%d" % i)
            old_map = router.map
            src = old_map.subgroup_ids[0]
            shard = old_map.shards_of_subgroup(src)[0]
            target = old_map.subgroup_ids[1]
            before = service.shard_items(shard, old_map)
            rec = yield from router.rebalancer.migrate(shard, target)
            records.append((rec, old_map, shard, target, before))

        cluster.spawn_sender(run())
        cluster.run_to_quiescence(max_time=2.0)
        rec, old_map, shard, target, before = records[0]
        assert rec.ok and rec.crc_ok and rec.checksum_agree
        assert rec.keys_moved == len(before) > 0
        assert rec.chunks >= 1
        assert rec.error is None
        assert router.map.subgroup_of(shard) == target
        assert old_map.moved_shards(router.map) == [shard]
        assert router.map.version == rec.map_version == old_map.version + 1
        # Source replicas dropped the shard; the verifier is clean.
        for nid in cluster.members_of(old_map.subgroup_of(shard)):
            rep = service.replicas[(old_map.subgroup_of(shard), nid)]
            assert not any(router.map.shard_of(k) == shard
                           for k in rep.data)
        audit = router.verifier.check()
        assert audit.ok, audit.violations
        assert audit.keys_checked > 0

    def test_migration_to_same_subgroup_is_a_noop(self):
        cluster, router = build_plane(num_nodes=4, num_shards=2,
                                      num_subgroups=2)
        shard = 0
        sg = router.map.subgroup_of(shard)
        records = []

        def run():
            rec = yield from router.rebalancer.migrate(shard, sg)
            records.append(rec)

        cluster.spawn_sender(run())
        cluster.run_to_quiescence(max_time=1.0)
        assert records[0].ok and records[0].keys_moved == 0

    def test_migration_to_unknown_subgroup_fails_cleanly(self):
        cluster, router = build_plane(num_nodes=4, num_shards=2,
                                      num_subgroups=2)
        version = router.map.version
        records = []

        def run():
            rec = yield from router.rebalancer.migrate(0, 99)
            records.append(rec)

        cluster.spawn_sender(run())
        cluster.run_to_quiescence(max_time=1.0)
        assert not records[0].ok
        assert "unserviceable" in records[0].error
        assert router.map.version == version  # placement untouched


# ===========================================================================
# Failover: re-route + idempotent replay across a view change
# ===========================================================================


class TestFailover:
    def test_gateway_crash_loses_no_accepted_request(self):
        cluster = Cluster(6, config=SpindleConfig.optimized(), seed=5)
        cluster.add_shards(num_shards=4, replication=3, num_subgroups=2,
                           window=8, message_size=256)
        cluster.enable_membership(heartbeat_period=us(100),
                                  suspicion_timeout=us(500))
        cluster.build()
        cluster.enable_recovery()
        router = cluster.router(RouterConfig(max_retries=400))
        outcomes = []
        expected = {}

        def client(c):
            for i in range(15):
                key = b"f%d.%d" % (c, i)
                out = yield from router.request("put", key, b"val%d" % i)
                outcomes.append(out)
                if out.status == "ok":
                    expected[key] = b"val%d" % i
                yield us(50)

        for c in range(3):
            cluster.spawn_sender(client(c))
        cluster.faults.crash(0, at=us(400))  # gateway of subgroup 0
        cluster.run(until=ms(30))

        assert len(outcomes) == 45
        assert all(o.status == "ok" for o in outcomes)
        assert 0 not in cluster.view.members
        assert router.counters.gateway_changes >= 1
        assert router.counters.epoch_retries + router.counters.wedge_aborts >= 1
        for key, value in expected.items():
            assert router.stale_read(key) == value
        audit = router.verifier.check()
        assert audit.ok, audit.violations


# ===========================================================================
# Open-loop client + SLO accounting
# ===========================================================================


class TestOpenLoopClient:
    def test_poisson_arrivals_complete_with_slo_accounting(self):
        cluster, router = build_plane(num_shards=4, num_subgroups=2,
                                      num_nodes=8, seed=6)
        from random import Random

        stats = SloStats()
        cluster.spawn_sender(open_loop_client(
            cluster.sim,
            lambda k: router.request("put", b"ol%d" % k, b"v"),
            rate=50_000.0, count=40, rng=Random(99), stats=stats,
            deadline=ms(5)))
        cluster.run_to_quiescence(max_time=5.0)
        assert stats.submitted == stats.completed == 40
        assert stats.ok == 40
        assert stats.slo_misses == 0
        assert len(stats.latencies) == 40
        assert 0 < stats.p50() <= stats.p99()
        d = stats.to_dict()
        assert d["p99_latency"] == stats.p99()

    def test_open_loop_is_deterministic_in_the_seed(self):
        from random import Random

        def once():
            cluster, router = build_plane(num_shards=2, num_subgroups=2,
                                          seed=8)
            stats = SloStats()
            cluster.spawn_sender(open_loop_client(
                cluster.sim,
                lambda k: router.request("put", b"d%d" % k, b"v"),
                rate=100_000.0, count=25, rng=Random(4), stats=stats))
            cluster.run_to_quiescence(max_time=2.0)
            return stats.to_dict()

        assert once() == once()

    def test_rejected_and_timeout_outcomes_are_bucketed(self):
        stats = SloStats()
        stats.record("ok", 0.002, deadline_missed=True)
        stats.record("rejected", 0.0, attempts=5)
        stats.record("timeout", 0.0)
        assert stats.ok == 1 and stats.rejected == 1 and stats.timeouts == 1
        assert stats.slo_misses == 1
        assert stats.attempts == 7
        assert len(stats.latencies) == 1  # only ok completions measured


# ===========================================================================
# Chaos scenarios: determinism + JSON replay
# ===========================================================================


def sharded_chaotic_run(schedule_json=None, seed=13):
    """Shard-plane run under a mixed fault diet, imperative or replayed
    from a serialized schedule (the PR-2 chaotic_run pattern)."""
    cluster = Cluster(6, config=SpindleConfig.optimized(), seed=seed)
    cluster.add_shards(num_shards=4, replication=2, num_subgroups=3,
                       window=8, message_size=256)
    cluster.build()
    router = cluster.router()
    outcomes = []

    def client(c):
        for i in range(20):
            out = yield from router.request("put", b"c%d.%d" % (c, i), b"v")
            outcomes.append((c, i, out.status, out.attempts, out.shard))
            yield us(40)

    for c in range(3):
        cluster.spawn_sender(client(c))
    if schedule_json is None:
        cluster.faults.jitter(until=ms(5), extra_latency=us(1),
                              jitter=us(3), at=0.0)
        cluster.faults.stall(1, duration=us(300), at=ms(1))
    else:
        cluster.faults.apply(FaultSchedule.from_json(schedule_json))
    cluster.run(until=ms(20))
    digest = {sg: cluster.total_delivered(sg)
              for sg in cluster._shard_plan["subgroup_ids"]}
    return (outcomes, digest, router.counters.to_dict(),
            cluster.faults.counters(), cluster.faults.schedule.to_json())


class TestShardChaos:
    def test_shard_scenarios_pass_seeds_0_to_2(self):
        for name in ("shard-failover", "rebalance-under-load"):
            for seed in range(3):
                result = run_scenario(name, seed)
                assert result.ok, (name, seed, result.problems)

    def test_shard_scenarios_replay_identically(self):
        for name in ("shard-failover", "rebalance-under-load"):
            a = run_scenario(name, seed=1)
            b = run_scenario(name, seed=1)
            assert a.to_dict() == b.to_dict(), name

    def test_imperative_run_equals_json_replay(self):
        out1, digest1, router1, faults1, schedule = sharded_chaotic_run()
        out2, digest2, router2, faults2, round_trip = sharded_chaotic_run(
            schedule_json=schedule)
        assert out2 == out1
        assert digest2 == digest1
        assert router2 == router1
        assert faults2 == faults1
        assert round_trip == schedule

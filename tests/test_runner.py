"""Tests for the experiment runner (workloads.runner)."""

import pytest

from repro.core.config import SpindleConfig
from repro.rdma.latency import LatencyModel
from repro.sim.units import us
from repro.workloads import delayed_senders, multi_subgroup, single_subgroup


class TestSingleSubgroup:
    def test_returns_complete_result(self):
        result = single_subgroup(3, "all", SpindleConfig.optimized(),
                                 message_size=1024, count=30, window=8)
        assert result.throughput > 0
        assert result.latency > 0
        assert result.delivered_per_node == 90
        assert result.rdma_writes > 0
        assert result.duration > 0

    def test_pattern_controls_senders(self):
        one = single_subgroup(4, "one", SpindleConfig.optimized(),
                              message_size=1024, count=30, window=8)
        all_ = single_subgroup(4, "all", SpindleConfig.optimized(),
                               message_size=1024, count=30, window=8)
        assert one.delivered_per_node == 30
        assert all_.delivered_per_node == 120

    def test_custom_latency_model(self):
        rdma = single_subgroup(3, "all", SpindleConfig.optimized(),
                               message_size=10240, count=40)
        tcp = single_subgroup(3, "all", SpindleConfig.optimized(),
                              message_size=10240, count=40,
                              latency_model=LatencyModel.tcp(),
                              max_time=300.0)
        assert tcp.throughput < rdma.throughput

    def test_seed_reproducibility(self):
        a = single_subgroup(3, "all", count=25, message_size=512, seed=3)
        b = single_subgroup(3, "all", count=25, message_size=512, seed=3)
        assert a.throughput == b.throughput
        assert a.latency == b.latency
        assert a.rdma_writes == b.rdma_writes


class TestMultiSubgroup:
    def test_inactive_subgroups_cost_baseline_throughput(self):
        solo = multi_subgroup(3, num_subgroups=1, active_subgroups=1,
                              config=SpindleConfig.baseline(),
                              message_size=1024, count=25, window=8)
        crowded = multi_subgroup(3, num_subgroups=10, active_subgroups=1,
                                 config=SpindleConfig.baseline(),
                                 message_size=1024, count=25, window=8)
        assert crowded.throughput < solo.throughput

    def test_active_fraction_extra_recorded(self):
        result = multi_subgroup(3, num_subgroups=4, active_subgroups=1,
                                message_size=1024, count=20, window=8)
        assert 0 < result.extras["active_fraction_node0"] <= 1.0

    def test_multiple_active_subgroups_aggregate(self):
        result = multi_subgroup(3, num_subgroups=2, active_subgroups=2,
                                message_size=1024, count=20, window=8)
        assert result.throughput > 0


class TestDelayedSenders:
    def test_counts_respected(self):
        result = delayed_senders(4, delayed=[0], delay=us(50),
                                 message_size=1024, count=30,
                                 delayed_count=10, window=8)
        assert result.delivered_per_node == 3 * 30 + 10

    def test_indefinite_mode_uses_burst(self):
        result = delayed_senders(4, delayed=[0, 1], delay=0.0,
                                 message_size=1024, count=30,
                                 indefinite=True, window=8)
        assert result.delivered_per_node == 2 * 30 + 2 * 2

    def test_interdelivery_extra_present(self):
        result = delayed_senders(3, delayed=[0], delay=us(100),
                                 message_size=1024, count=30,
                                 delayed_count=10, window=8)
        assert result.extras["interdelivery_continuous"] > 0

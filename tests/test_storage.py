"""Tests for the simulated storage layer (docs/DURABILITY.md).

Covers :class:`StorageDevice` write/fsync/crash/torn/corrupt/reopen
semantics, the log-entry codec, :class:`ClusterStorage` bookkeeping,
and the Cluster-level durable-log plumbing (``adopt_log`` pristine
guard, ``adopt_durable_log``, ``restart_node`` edge cases).
"""

import pytest

from repro.core.config import SpindleConfig
from repro.core.persistence import StorageModel
from repro.sim.engine import Simulator
from repro.storage import (ClusterStorage, StorageDevice, decode_log_entry,
                           encode_log_entry)
from repro.workloads import Cluster, continuous_sender


def make_device(name="dev"):
    sim = Simulator()
    dev = StorageDevice(sim, StorageModel(), name=name, node_id=0)
    return sim, dev


def drive_fsync(sim, dev):
    """Run one fsync generator to completion on the sim clock."""
    sim.spawn(dev.fsync(), name="fsync")
    sim.run()


# ---------------------------------------------------------------------------
# Log-entry codec
# ---------------------------------------------------------------------------


class TestLogEntryCodec:
    def test_round_trip_with_payload(self):
        blob = encode_log_entry(7, 2, b"hello")
        assert decode_log_entry(blob) == (7, 2, b"hello")

    def test_none_payload_distinct_from_empty(self):
        none_blob = encode_log_entry(0, 0, None)
        empty_blob = encode_log_entry(0, 0, b"")
        assert none_blob != empty_blob
        assert decode_log_entry(none_blob) == (0, 0, None)
        assert decode_log_entry(empty_blob) == (0, 0, b"")

    def test_truncated_body_raises(self):
        blob = encode_log_entry(1, 1, b"payload")
        with pytest.raises(ValueError):
            decode_log_entry(blob[:-2])


# ---------------------------------------------------------------------------
# StorageDevice
# ---------------------------------------------------------------------------


class TestDeviceWriteFsync:
    def test_write_is_volatile_until_fsync(self):
        sim, dev = make_device()
        dev.write(b"a")
        dev.write(b"b")
        assert dev.pending_records == 2
        assert dev.records() == []  # nothing durable yet
        drive_fsync(sim, dev)
        assert dev.pending_records == 0
        assert dev.records() == [b"a", b"b"]

    def test_fsync_charges_append_time(self):
        sim, dev = make_device()
        dev.write(b"x" * 4096)
        drive_fsync(sim, dev)
        assert sim.now == pytest.approx(dev.model.append_time(4096))

    def test_fsync_noop_when_nothing_pending(self):
        sim, dev = make_device()
        drive_fsync(sim, dev)
        assert sim.now == 0.0
        assert dev.counters["fsyncs"] == 0

    def test_billed_overrides_length(self):
        sim, dev = make_device()
        dev.write(b"tiny", billed=1024)
        drive_fsync(sim, dev)
        assert dev.billed_total == 1024

    def test_concurrent_fsyncs_never_double_flush(self):
        sim, dev = make_device()
        dev.write(b"one")
        sim.spawn(dev.fsync(), name="f1")
        sim.spawn(dev.fsync(), name="f2")
        sim.run()
        assert dev.records() == [b"one"]
        assert dev.billed_total == 3


class TestDeviceCrash:
    def test_crash_drops_unfsynced_tail(self):
        sim, dev = make_device()
        dev.write(b"durable")
        drive_fsync(sim, dev)
        dev.write(b"volatile")
        dev.crash()
        assert dev.reopen() == [b"durable"]
        assert dev.counters["lost_tail_records"] == 1

    def test_crash_during_fsync_loses_batch(self):
        sim, dev = make_device()
        dev.write(b"in-flight")
        sim.spawn(dev.fsync(), name="fsync")

        def killer():
            yield dev.model.append_time(9) / 2  # mid-flush
            dev.crash()

        sim.spawn(killer(), name="killer")
        sim.run()
        assert dev.reopen() == []

    def test_torn_append_detected_on_reopen(self):
        sim, dev = make_device()
        dev.write(b"safe")
        drive_fsync(sim, dev)
        dev.write(b"torn-victim" * 8)  # big enough that the torn
        dev.torn_crashes_armed = 1     # prefix includes a full header
        dev.crash()
        assert dev.counters["torn_writes"] == 1
        assert dev.image_bytes > len(b"safe") + 12  # torn prefix landed
        assert dev.reopen() == [b"safe"]  # CRC scan truncates the tear
        assert dev.counters["records_dropped_on_reopen"] >= 1

    def test_fsync_stall_delays_durability(self):
        sim, dev = make_device()
        dev.write(b"slow")
        dev.fsync_stalled_until = 1.0
        drive_fsync(sim, dev)
        assert sim.now >= 1.0


class TestDeviceCorruptionAndReopen:
    def test_corrupt_truncates_from_record_on(self):
        sim, dev = make_device()
        for body in (b"r0", b"r1", b"r2"):
            dev.write(body)
        drive_fsync(sim, dev)
        assert dev.corrupt(record_index=1)
        assert dev.reopen() == [b"r0"]

    def test_corrupt_out_of_range_is_false(self):
        sim, dev = make_device()
        dev.write(b"only")
        drive_fsync(sim, dev)
        assert not dev.corrupt(record_index=5)

    def test_reopen_recomputes_billed(self):
        sim, dev = make_device()
        dev.write(b"a", billed=100)
        dev.write(b"b", billed=200)
        drive_fsync(sim, dev)
        dev.corrupt(record_index=1)
        dev.reopen()
        assert dev.billed_total == 100

    def test_rewrite_replaces_contents(self):
        sim, dev = make_device()
        dev.write(b"old")
        drive_fsync(sim, dev)
        dev.rewrite([(b"new1", 10), (b"new2", 20)], billed_base=5)
        assert dev.records() == [b"new1", b"new2"]
        assert dev.billed_total == 35
        # Rewritten contents survive reopen intact.
        assert dev.reopen() == [b"new1", b"new2"]


class TestClusterStorage:
    def test_device_get_or_create_and_peek(self):
        sim = Simulator()
        cs = ClusterStorage(sim, StorageModel())
        assert cs.peek(0, "sg0") is None
        dev = cs.device(0, "sg0")
        assert cs.device(0, "sg0") is dev
        assert cs.peek(0, "sg0") is dev

    def test_crash_node_hits_all_node_devices(self):
        sim = Simulator()
        cs = ClusterStorage(sim, StorageModel())
        a = cs.device(1, "sg0")
        b = cs.device(1, "wal")
        other = cs.device(2, "sg0")
        for dev in (a, b, other):
            dev.write(b"x")
        cs.crash_node(1)
        assert a.pending_records == 0 and b.pending_records == 0
        assert other.pending_records == 1

    def test_counters_summed(self):
        sim = Simulator()
        cs = ClusterStorage(sim, StorageModel())
        cs.device(0, "sg0").write(b"x")
        cs.device(1, "sg0").write(b"y")
        assert cs.counters()["appends"] == 2


# ---------------------------------------------------------------------------
# Cluster-level plumbing
# ---------------------------------------------------------------------------


def build_cluster(n=3, count=10, size=256):
    cluster = Cluster(n, config=SpindleConfig.optimized())
    cluster.add_subgroup(message_size=size, window=8, persistent=True)
    cluster.build()
    for nid in cluster.node_ids:
        cluster.spawn_sender(continuous_sender(
            cluster.mc(nid, 0), count=count, size=size,
            payload_fn=lambda k, nid=nid: b"%d:%d" % (nid, k)))
    return cluster


class TestClusterDurablePlumbing:
    def test_adopt_log_non_pristine_raises(self):
        cluster = build_cluster()
        cluster.run_to_quiescence(max_time=30.0)
        engine = cluster.group(0).persistence[0]
        assert engine.log  # took appends this epoch
        with pytest.raises(RuntimeError, match="non-pristine"):
            engine.adopt_log([(0, 0, b"spliced")])

    def test_adopt_durable_log_bookkeeping(self):
        cluster = build_cluster()
        cluster.run_to_quiescence(max_time=30.0)
        entries = [(0, 0, b"aaaa"), (1, 1, None), (2, 2, b"bb")]
        cluster.adopt_durable_log(0, 0, entries, log_bytes=100)
        # The live engine still reports this epoch's log; the device
        # holds the adopted one for the next epoch. Read the device.
        dev = cluster.storage.peek(0, "sg0")
        assert [decode_log_entry(b) for b in dev.records()] == entries
        assert dev.billed_total == 100

    def test_adopt_durable_log_infers_bytes(self):
        cluster = build_cluster()
        cluster.adopt_durable_log(1, 0, [(0, 0, b"12345")])
        dev = cluster.storage.peek(1, "sg0")
        assert dev.billed_total == 5

    def test_restart_never_crashed_raises(self):
        cluster = build_cluster()
        with pytest.raises(RuntimeError, match="not crashed"):
            cluster.restart_node(0)

    def test_double_restart_raises(self):
        cluster = build_cluster()

        def chaos():
            yield 0.001
            cluster.fail_node(2)
            yield 0.001
            cluster.restart_node(2)

        cluster.sim.spawn(chaos(), name="chaos")
        cluster.run_to_quiescence(max_time=30.0)
        with pytest.raises(RuntimeError, match="not crashed"):
            cluster.restart_node(2)

    def test_durable_log_survives_node_crash(self):
        cluster = build_cluster(count=10)
        cluster.run_to_quiescence(max_time=30.0)
        before, _bytes = cluster.durable_log(1, 0)
        assert before
        cluster.fail_node(1)
        after, _bytes2 = cluster.durable_log(1, 0)
        # Fsynced entries survive the crash; the tail may be shorter
        # but never reordered.
        assert after == before[:len(after)]
